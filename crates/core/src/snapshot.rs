//! Versioned checkpoint/restore: the `ACSOSNAP` container.
//!
//! A checkpoint captures *everything* a training run needs to resume
//! bit-identically: both Q-networks (the target lags the online net), the
//! Adam moment vectors, the replay ring with its sum-tree leaf priorities,
//! the feature arena (contents, reference counts and free list — slot order
//! is load-bearing because transitions hold arena indices), the pending
//! n-step window, the schedule positions and step counters, and the exact
//! exploration-RNG stream position. `tests/resume_determinism.rs` pins the
//! contract: *train 2N episodes* and *train N, checkpoint, kill, restore,
//! train N* produce byte-identical weights and transcripts.
//!
//! The container extends the `ACSOWTS` idiom of [`crate::agent::io`]: a
//! magic, a format version, then a table of tagged sections, and — new here —
//! a trailing FNV-1a digest of everything before it, so a torn write (power
//! loss mid-`rename`, truncated copy) is detected up front and reported as
//! [`SnapshotError::DigestMismatch`] rather than decoded into garbage.
//!
//! Writers never update a snapshot in place: [`write_atomic`] writes a
//! sibling temporary file and `rename`s it over the destination, so readers
//! observe either the old snapshot or the new one, never a mix.

use crate::agent::{io as weights_io, AcsoAgent, QNetwork};
use crate::features::StateFeatures;
use crate::train::TrainReport;
use neural::Matrix;
use rl::{FeatureArena, FeatureId, NStepTransition, PrioritizedReplay, Transition};
use std::path::Path;

/// Magic bytes opening every snapshot container.
pub const MAGIC: &[u8; 8] = b"ACSOSNAP";

/// Version of the container format this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the digest sealing a snapshot, and the fingerprint
/// primitive the determinism harnesses (golden tests, the soak bin) use to
/// compare run outcomes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Why a snapshot could not be parsed or applied.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`]; both found and expected bytes
    /// are reported.
    BadMagic {
        /// The first eight bytes actually present.
        found: [u8; 8],
    },
    /// The container version is not one this build reads.
    UnsupportedVersion {
        /// The version field actually present.
        found: u32,
    },
    /// The file is shorter than the fixed header + digest.
    Truncated {
        /// Bytes actually present.
        len: usize,
    },
    /// The trailing digest does not match the contents — a torn or corrupted
    /// write.
    DigestMismatch {
        /// Digest recomputed over the contents.
        computed: u64,
        /// Digest stored in the trailer.
        stored: u64,
    },
    /// A section the decoder needs is absent.
    MissingSection(&'static str),
    /// A section decoded inconsistently (shapes, counts or invariants).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => write!(
                f,
                "not an ACSOSNAP snapshot: magic bytes {found:02x?}, expected {MAGIC:02x?}"
            ),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found}, expected {FORMAT_VERSION}"
            ),
            SnapshotError::Truncated { len } => {
                write!(f, "snapshot truncated: {len} bytes is too short")
            }
            SnapshotError::DigestMismatch { computed, stored } => write!(
                f,
                "snapshot digest mismatch: contents hash to {computed:016x} \
                 but the trailer says {stored:016x} (torn or corrupt write)"
            ),
            SnapshotError::MissingSection(tag) => {
                write!(f, "snapshot is missing its `{tag}` section")
            }
            SnapshotError::Corrupt(why) => write!(f, "snapshot is corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for std::io::Error {
    fn from(e: SnapshotError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

fn corrupt<T>(why: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Corrupt(why.into()))
}

fn tag_bytes(tag: &str) -> [u8; 8] {
    let mut out = [0u8; 8];
    assert!(tag.len() <= 8, "section tag `{tag}` longer than 8 bytes");
    out[..tag.len()].copy_from_slice(tag.as_bytes());
    out
}

/// Assembles an `ACSOSNAP` container: tagged sections in insertion order,
/// sealed by the trailing digest.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one section. Tags are at most 8 bytes (zero-padded on disk).
    pub fn section(&mut self, tag: &str, payload: Vec<u8>) -> &mut Self {
        self.sections.push((tag_bytes(tag), payload));
        self
    }

    /// Serializes the container: magic, version, section count, sections
    /// (`tag[8] len[u64 LE] payload`), then the FNV-1a digest of everything
    /// preceding it.
    pub fn finish(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        let digest = fnv1a64(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }
}

/// A parsed `ACSOSNAP` container: the digest has been verified and the
/// section table indexed.
#[derive(Debug)]
pub struct Snapshot<'a> {
    sections: Vec<([u8; 8], &'a [u8])>,
}

impl<'a> Snapshot<'a> {
    /// Parses and verifies a container. The digest check runs first, so any
    /// torn or truncated write surfaces as one typed error before section
    /// decoding begins.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 24 {
            return Err(SnapshotError::Truncated { len: bytes.len() });
        }
        let (contents, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        let computed = fnv1a64(contents);
        if computed != stored {
            return Err(SnapshotError::DigestMismatch { computed, stored });
        }
        if &contents[..8] != MAGIC {
            return Err(SnapshotError::BadMagic {
                found: contents[..8].try_into().unwrap(),
            });
        }
        let version = u32::from_le_bytes(contents[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let count = u32::from_le_bytes(contents[12..16].try_into().unwrap()) as usize;
        let mut sections = Vec::with_capacity(count);
        let mut at = 16;
        for _ in 0..count {
            if contents.len() - at < 16 {
                return corrupt("section header overruns the container");
            }
            let tag: [u8; 8] = contents[at..at + 8].try_into().unwrap();
            let len = u64::from_le_bytes(contents[at + 8..at + 16].try_into().unwrap()) as usize;
            at += 16;
            if contents.len() - at < len {
                return corrupt("section payload overruns the container");
            }
            sections.push((tag, &contents[at..at + len]));
            at += len;
        }
        if at != contents.len() {
            return corrupt("trailing bytes after the last section");
        }
        Ok(Self { sections })
    }

    /// The payload of the section with `tag`.
    pub fn section(&self, tag: &'static str) -> Result<&'a [u8], SnapshotError> {
        let wanted = tag_bytes(tag);
        self.sections
            .iter()
            .find(|(t, _)| *t == wanted)
            .map(|(_, payload)| *payload)
            .ok_or(SnapshotError::MissingSection(tag))
    }
}

/// Writes `bytes` to `path` atomically: the contents land in a sibling
/// `.tmp` file first and are `rename`d over the destination, so a reader (or
/// a crash) never observes a half-written snapshot.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Payload codec primitives. Public: other layers (the serve daemon's state
// snapshots, the soak harness) encode their own sections with the same
// little-endian conventions.

/// Bounds-checked cursor over a section payload. Every read names the offset
/// in its error so a truncated or mis-versioned section is diagnosable.
pub struct SectionReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> SectionReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    /// Consumes exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.at < n {
            return corrupt(format!(
                "section truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len() - self.at
            ));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` stored as its raw bits (bit-exact round trip).
    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` stored as its raw bits (bit-exact round trip).
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string (see [`push_bytes`]).
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string (see [`push_string`]).
    pub fn string(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.at != self.bytes.len() {
            return corrupt(format!(
                "{} trailing bytes after section contents",
                self.bytes.len() - self.at
            ));
        }
        Ok(())
    }
}

/// Appends a little-endian `u32`.
pub fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its raw bits (bit-exact round trip).
pub fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

/// Appends a length-prefixed byte string.
pub fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    push_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn push_string(out: &mut Vec<u8>, s: &str) {
    push_bytes(out, s.as_bytes());
}

fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    push_u32(out, m.rows() as u32);
    push_u32(out, m.cols() as u32);
    for &x in m.data() {
        push_u32(out, x.to_bits());
    }
}

fn read_matrix(c: &mut SectionReader<'_>) -> Result<Matrix, SnapshotError> {
    let rows = c.u32()? as usize;
    let cols = c.u32()? as usize;
    let mut data = vec![0.0f32; rows * cols];
    for x in &mut data {
        *x = c.f32()?;
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn push_index_list(out: &mut Vec<u8>, list: &[usize]) {
    push_u32(out, list.len() as u32);
    for &i in list {
        push_u32(out, i as u32);
    }
}

fn read_index_list(c: &mut SectionReader<'_>) -> Result<Vec<usize>, SnapshotError> {
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(c.u32()? as usize);
    }
    Ok(out)
}

fn push_features(out: &mut Vec<u8>, f: &StateFeatures) {
    push_matrix(out, &f.nodes);
    push_matrix(out, &f.plcs);
    push_matrix(out, &f.plc_summary);
    push_index_list(out, &f.host_rows);
    push_index_list(out, &f.server_rows);
}

fn read_features(c: &mut SectionReader<'_>) -> Result<StateFeatures, SnapshotError> {
    Ok(StateFeatures {
        nodes: read_matrix(c)?,
        plcs: read_matrix(c)?,
        plc_summary: read_matrix(c)?,
        host_rows: read_index_list(c)?,
        server_rows: read_index_list(c)?,
    })
}

// ---------------------------------------------------------------------------
// Training checkpoint.

/// Section tags of a training checkpoint (one place, so the encoder, the
/// decoder and the docs cannot drift apart).
mod tags {
    pub const ONLINE: &str = "online";
    pub const TARGET: &str = "target";
    pub const OPTIM: &str = "optim";
    pub const TRAINER: &str = "trainer";
    pub const RNG: &str = "rng";
    pub const ARENA: &str = "arena";
    pub const REPLAY: &str = "replay";
    pub const NSTEP: &str = "nstep";
    pub const PROGRESS: &str = "progress";
}

/// Serializes a full training checkpoint of `agent` (both networks, Adam
/// state, replay ring + arena, schedules, RNG position) plus the partial
/// training `report` accumulated so far. Call at an episode boundary (after
/// [`AcsoAgent::end_episode`]): the environment itself is *not* captured —
/// each episode rebuilds it from `episode_seed(seed, index)`, and the belief
/// filter resets at `begin_episode` — so the boundary is the point where the
/// remaining state is exactly what this snapshot holds.
pub fn encode_train_checkpoint<N: QNetwork + Clone>(
    agent: &mut AcsoAgent<N>,
    report: &TrainReport,
) -> Vec<u8> {
    let mut builder = SnapshotBuilder::new();

    let mut online = Vec::new();
    weights_io::save_weights_to(agent.network_mut(), &mut online)
        .expect("writing weights to a Vec cannot fail");
    builder.section(tags::ONLINE, online);

    let mut target = Vec::new();
    weights_io::save_weights_to(agent.target_mut(), &mut target)
        .expect("writing weights to a Vec cannot fail");
    builder.section(tags::TARGET, target);

    builder.section(tags::OPTIM, agent.optimizer().state_bytes());

    let counters = agent.trainer().counters();
    let mut buf = Vec::new();
    push_f64(&mut buf, counters.epsilon_current);
    push_u64(&mut buf, counters.beta_current_step);
    push_u64(&mut buf, counters.env_steps);
    push_u64(&mut buf, counters.updates);
    push_u64(&mut buf, counters.updates_since_sync);
    builder.section(tags::TRAINER, buf);

    let mut buf = Vec::new();
    for word in agent.rng_state() {
        push_u64(&mut buf, word);
    }
    builder.section(tags::RNG, buf);

    let (slots, refs, free) = agent.trainer().arena().parts();
    let mut buf = Vec::new();
    push_u32(&mut buf, slots.len() as u32);
    for slot in slots {
        match slot {
            Some(features) => {
                buf.push(1);
                push_features(&mut buf, features);
            }
            None => buf.push(0),
        }
    }
    for &r in refs {
        push_u32(&mut buf, r);
    }
    push_u32(&mut buf, free.len() as u32);
    for &f in free {
        push_u32(&mut buf, f);
    }
    builder.section(tags::ARENA, buf);

    let replay = agent.trainer().replay();
    let mut buf = Vec::new();
    push_f64(&mut buf, replay.alpha());
    push_u32(&mut buf, replay.capacity() as u32);
    push_u32(&mut buf, replay.next_slot() as u32);
    push_u32(&mut buf, replay.len() as u32);
    push_f64(&mut buf, replay.max_priority());
    for index in 0..replay.capacity() {
        push_f64(&mut buf, replay.leaf_priority(index));
        match replay.slot(index) {
            Some(t) => {
                buf.push(1);
                push_u32(&mut buf, t.state.index() as u32);
                push_u32(&mut buf, t.action as u32);
                push_f64(&mut buf, t.return_n);
                push_u32(&mut buf, t.final_state.index() as u32);
                buf.push(u8::from(t.done));
                push_u32(&mut buf, t.steps as u32);
            }
            None => buf.push(0),
        }
    }
    builder.section(tags::REPLAY, buf);

    let window: Vec<&Transition<FeatureId>> = agent.trainer().nstep_window().collect();
    let mut buf = Vec::new();
    push_u32(&mut buf, window.len() as u32);
    for t in window {
        push_u32(&mut buf, t.state.index() as u32);
        push_u32(&mut buf, t.action as u32);
        push_f64(&mut buf, t.reward);
        push_u32(&mut buf, t.next_state.index() as u32);
        buf.push(u8::from(t.done));
    }
    builder.section(tags::NSTEP, buf);

    let mut buf = Vec::new();
    push_u32(&mut buf, report.episode_returns.len() as u32);
    for &r in &report.episode_returns {
        push_f64(&mut buf, r);
    }
    push_u32(&mut buf, report.episode_losses.len() as u32);
    for &l in &report.episode_losses {
        push_u32(&mut buf, l.to_bits());
    }
    builder.section(tags::PROGRESS, buf);

    builder.finish()
}

/// Applies a training checkpoint to an agent freshly constructed with the
/// *same* configuration, network architecture and topology as the saved run,
/// and returns the partial [`TrainReport`] the checkpoint carried. On error
/// the agent is left untouched (all sections decode into locals before
/// anything is applied), so a corrupt checkpoint can degrade to a cold start.
pub fn decode_train_checkpoint<N: QNetwork + Clone>(
    agent: &mut AcsoAgent<N>,
    bytes: &[u8],
) -> Result<TrainReport, SnapshotError> {
    let snapshot = Snapshot::parse(bytes)?;

    // Decode every section into locals first.
    let mut online = agent.network_mut().clone();
    weights_io::load_weights_from(&mut online, &mut snapshot.section(tags::ONLINE)?)
        .map_err(|e| SnapshotError::Corrupt(format!("online weights: {e}")))?;
    let mut target = agent.network_mut().clone();
    weights_io::load_weights_from(&mut target, &mut snapshot.section(tags::TARGET)?)
        .map_err(|e| SnapshotError::Corrupt(format!("target weights: {e}")))?;

    let mut optimizer = agent.optimizer().clone();
    optimizer
        .restore_state(snapshot.section(tags::OPTIM)?)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;

    let mut c = SectionReader::new(snapshot.section(tags::TRAINER)?);
    let counters = rl::TrainerCounters {
        epsilon_current: c.f64()?,
        beta_current_step: c.u64()?,
        env_steps: c.u64()?,
        updates: c.u64()?,
        updates_since_sync: c.u64()?,
    };
    c.finish()?;
    if !(0.0..=1.0).contains(&counters.epsilon_current) {
        return corrupt(format!(
            "epsilon {} outside [0, 1]",
            counters.epsilon_current
        ));
    }

    let mut c = SectionReader::new(snapshot.section(tags::RNG)?);
    let rng_state = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
    c.finish()?;

    let mut c = SectionReader::new(snapshot.section(tags::ARENA)?);
    let slot_count = c.u32()? as usize;
    let mut slots = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        slots.push(match c.u8()? {
            0 => None,
            1 => Some(read_features(&mut c)?),
            other => return corrupt(format!("arena slot marker {other}")),
        });
    }
    let mut refs = Vec::with_capacity(slot_count);
    for _ in 0..slot_count {
        refs.push(c.u32()?);
    }
    let free_count = c.u32()? as usize;
    let mut free = Vec::with_capacity(free_count);
    for _ in 0..free_count {
        free.push(c.u32()?);
    }
    c.finish()?;
    let arena = FeatureArena::from_parts(slots, refs, free).map_err(SnapshotError::Corrupt)?;

    let mut c = SectionReader::new(snapshot.section(tags::REPLAY)?);
    let alpha = c.f64()?;
    let capacity = c.u32()? as usize;
    let next_slot = c.u32()? as usize;
    let len = c.u32()? as usize;
    let max_priority = c.f64()?;
    let mut items = Vec::with_capacity(capacity);
    let mut leaves = Vec::with_capacity(capacity);
    for _ in 0..capacity {
        leaves.push(c.f64()?);
        items.push(match c.u8()? {
            0 => None,
            1 => {
                let state = FeatureId::from_index(c.u32()? as usize);
                let action = c.u32()? as usize;
                let return_n = c.f64()?;
                let final_state = FeatureId::from_index(c.u32()? as usize);
                let done = c.u8()? != 0;
                let steps = c.u32()? as usize;
                Some(NStepTransition {
                    state,
                    action,
                    return_n,
                    final_state,
                    done,
                    steps,
                })
            }
            other => return corrupt(format!("replay slot marker {other}")),
        });
    }
    c.finish()?;
    let replay = PrioritizedReplay::from_parts(alpha, items, &leaves, next_slot, len, max_priority)
        .map_err(SnapshotError::Corrupt)?;

    let mut c = SectionReader::new(snapshot.section(tags::NSTEP)?);
    let window_len = c.u32()? as usize;
    let mut window = Vec::with_capacity(window_len);
    for _ in 0..window_len {
        window.push(Transition {
            state: FeatureId::from_index(c.u32()? as usize),
            action: c.u32()? as usize,
            reward: c.f64()?,
            next_state: FeatureId::from_index(c.u32()? as usize),
            done: c.u8()? != 0,
        });
    }
    c.finish()?;

    let mut c = SectionReader::new(snapshot.section(tags::PROGRESS)?);
    let returns_len = c.u32()? as usize;
    let mut episode_returns = Vec::with_capacity(returns_len);
    for _ in 0..returns_len {
        episode_returns.push(c.f64()?);
    }
    let losses_len = c.u32()? as usize;
    let mut episode_losses = Vec::with_capacity(losses_len);
    for _ in 0..losses_len {
        episode_losses.push(f32::from_bits(c.u32()?));
    }
    c.finish()?;

    // Everything decoded — apply.
    agent
        .trainer_mut()
        .restore(arena, replay, window, counters)
        .map_err(SnapshotError::Corrupt)?;
    *agent.network_mut() = online;
    *agent.target_mut() = target;
    *agent.optimizer_mut() = optimizer;
    agent.restore_rng_state(rng_state);

    Ok(TrainReport {
        episode_returns,
        episode_losses,
        env_steps: counters.env_steps,
        updates: counters.updates,
    })
}

/// Run-progress counters read straight out of a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainProgress {
    /// Environment steps the checkpointed run had consumed.
    pub env_steps: u64,
    /// Gradient updates the checkpointed run had applied.
    pub updates: u64,
    /// Training episodes the checkpoint covers.
    pub episodes: usize,
}

/// Reads a checkpoint's progress counters without constructing an agent.
///
/// Schedulers (the soak harness, a resume planner) often only need to know
/// *how far* a checkpoint got — decoding the full replay ring and both
/// networks for that would cost a DBN fit and megabytes of copying. This
/// verifies the container digest and decodes just the counter and progress
/// sections.
pub fn peek_train_progress(bytes: &[u8]) -> Result<TrainProgress, SnapshotError> {
    let snapshot = Snapshot::parse(bytes)?;
    let mut c = SectionReader::new(snapshot.section(tags::TRAINER)?);
    let _epsilon = c.f64()?;
    let _beta = c.u64()?;
    let env_steps = c.u64()?;
    let updates = c.u64()?;
    let _sync = c.u64()?;
    c.finish()?;
    let mut c = SectionReader::new(snapshot.section(tags::PROGRESS)?);
    let episodes = c.u32()? as usize;
    Ok(TrainProgress {
        env_steps,
        updates,
        episodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trips_sections_in_order() {
        let mut builder = SnapshotBuilder::new();
        builder.section("alpha", vec![1, 2, 3]);
        builder.section("beta", Vec::new());
        let bytes = builder.finish();
        let snapshot = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snapshot.section("alpha").unwrap(), &[1, 2, 3]);
        assert_eq!(snapshot.section("beta").unwrap(), &[] as &[u8]);
        assert!(matches!(
            snapshot.section("gamma").unwrap_err(),
            SnapshotError::MissingSection("gamma")
        ));
    }

    #[test]
    fn torn_writes_fail_the_digest_check_not_the_decoder() {
        let mut builder = SnapshotBuilder::new();
        builder.section("alpha", vec![7; 100]);
        let bytes = builder.finish();
        // Any truncation — even one that leaves a structurally plausible
        // prefix — must surface as a digest mismatch or truncation error.
        for keep in [bytes.len() - 1, bytes.len() - 50, 30, 24] {
            let err = Snapshot::parse(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::DigestMismatch { .. } | SnapshotError::Truncated { .. }
                ),
                "truncation to {keep} gave {err}"
            );
        }
        // Too short for even the header.
        assert!(matches!(
            Snapshot::parse(&bytes[..10]).unwrap_err(),
            SnapshotError::Truncated { len: 10 }
        ));
        // A flipped content byte is caught by the digest too.
        let mut flipped = bytes.clone();
        flipped[20] ^= 0xFF;
        assert!(matches!(
            Snapshot::parse(&flipped).unwrap_err(),
            SnapshotError::DigestMismatch { .. }
        ));
    }

    #[test]
    fn bad_magic_and_version_are_reported_with_found_and_expected() {
        let mut builder = SnapshotBuilder::new();
        builder.section("alpha", vec![1]);
        let mut bytes = builder.finish();

        // Corrupt the magic, re-seal the digest so the magic check is what
        // fires.
        bytes[0..8].copy_from_slice(b"WRONGMAG");
        let len = bytes.len();
        let digest = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&digest.to_le_bytes());
        let err = Snapshot::parse(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("57, 52, 4f, 4e, 47, 4d, 41, 47")
                && err.to_string().contains("41, 43, 53, 4f, 53, 4e, 41, 50"),
            "magic error must show found and expected bytes: {err}"
        );

        bytes[0..8].copy_from_slice(MAGIC);
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        let digest = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&digest.to_le_bytes());
        let err = Snapshot::parse(&bytes).unwrap_err();
        assert_eq!(
            err.to_string(),
            "unsupported snapshot version 9, expected 1"
        );
    }

    #[test]
    fn write_atomic_replaces_the_destination() {
        let dir = std::env::temp_dir().join("acso_snapshot_write_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.acsosnap");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // The temporary never lingers.
        assert!(!dir.join("state.acsosnap.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
