//! Feature encoding: from observations and beliefs to network inputs.
//!
//! Each node is described by a fixed-width feature vector (belief over
//! compromise classes, node type, quarantine flag, this hour's alert and
//! investigation signals); the PLC population is summarised by a short global
//! vector. The encoding is identical for the attention network and the
//! baseline convolutional network so architecture comparisons are fair.
//!
//! Every *per-instance* dimension (node rows, PLC rows, host/server head
//! routing) derives from the [`Topology`] the encoder was built for — never
//! from paper constants — so any registry or seed-generated scenario encodes
//! correctly. The fixed widths ([`NODE_FEATURE_DIM`], [`PLC_FEATURE_DIM`],
//! [`PLC_SUMMARY_DIM`]) are structural: compromise classes, node-type
//! one-hot, alert severities and PLC statuses do not vary across topologies.

use dbn::DbnFilter;
use ics_net::{NodeKind, Topology};
use ics_sim::observation::NodeObservation;
use ics_sim::{CompromiseClass, Observation, PlcStatus};
use neural::Matrix;
use serde::{Deserialize, Serialize};

/// Width of the per-node feature vector.
pub const NODE_FEATURE_DIM: usize = CompromiseClass::COUNT + 3 + 1 + 3 + 1;
/// First node-type one-hot column.
const TYPE_COL: usize = CompromiseClass::COUNT;
/// Quarantine flag column.
const QUARANTINE_COL: usize = TYPE_COL + 3;
/// First alert-count column.
const ALERT_COL: usize = QUARANTINE_COL + 1;
/// Investigation-detection column.
const DETECTION_COL: usize = ALERT_COL + 3;
/// Width of the global PLC summary vector.
pub const PLC_SUMMARY_DIM: usize = 3;
/// Width of the per-PLC feature vector (status one-hot).
pub const PLC_FEATURE_DIM: usize = 3;

/// A fully-encoded state: everything the Q-networks consume for one decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateFeatures {
    /// Per-node features, one row per node (`[node_count, NODE_FEATURE_DIM]`).
    pub nodes: Matrix,
    /// Per-PLC status one-hots (`[plc_count, PLC_FEATURE_DIM]`).
    pub plcs: Matrix,
    /// Global PLC summary: fraction nominal, disrupted, destroyed.
    pub plc_summary: Matrix,
    /// Row indices of host nodes (workstations and HMIs).
    pub host_rows: Vec<usize>,
    /// Row indices of server nodes.
    pub server_rows: Vec<usize>,
}

impl StateFeatures {
    /// An empty placeholder whose buffers [`NodeFeatureEncoder::encode_into`]
    /// will size on first use.
    pub fn empty() -> Self {
        Self {
            nodes: Matrix::zeros(0, NODE_FEATURE_DIM),
            plcs: Matrix::zeros(0, PLC_FEATURE_DIM),
            plc_summary: Matrix::zeros(1, PLC_SUMMARY_DIM),
            host_rows: Vec::new(),
            server_rows: Vec::new(),
        }
    }

    /// Number of nodes in the encoded state.
    pub fn node_count(&self) -> usize {
        self.nodes.rows()
    }

    /// Number of PLCs in the encoded state.
    pub fn plc_count(&self) -> usize {
        self.plcs.rows()
    }
}

/// Encodes observations and beliefs into [`StateFeatures`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFeatureEncoder {
    node_kinds: Vec<NodeKindClass>,
    /// Row indices of host nodes, precomputed once from the topology.
    host_rows: Vec<usize>,
    /// Row indices of server nodes, precomputed once from the topology.
    server_rows: Vec<usize>,
}

/// Step-to-step bookkeeping for [`NodeFeatureEncoder::encode_active_into`]:
/// which rows the previous encode wrote observation columns into, and at what
/// simulation hour. One scratch per (feature buffer, episode stream) pair.
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    last_time: Option<u64>,
    prev_active: Vec<usize>,
}

impl EncodeScratch {
    /// A fresh scratch with no carry-over (the first encode through it runs
    /// the dense path).
    pub fn new() -> Self {
        Self::default()
    }

    /// Breaks the step chain: the next encode through this scratch runs the
    /// dense path. Call at episode boundaries.
    pub fn invalidate(&mut self) {
        self.last_time = None;
        self.prev_active.clear();
    }
}

/// Coarse node classes used for the one-hot type encoding and the output-head
/// routing (hosts share one head, servers another).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum NodeKindClass {
    Workstation,
    Server,
    Hmi,
}

impl NodeFeatureEncoder {
    /// Builds an encoder for a topology.
    pub fn new(topology: &Topology) -> Self {
        let node_kinds: Vec<NodeKindClass> = topology
            .nodes()
            .map(|n| match n.kind {
                NodeKind::Workstation => NodeKindClass::Workstation,
                NodeKind::Server(_) => NodeKindClass::Server,
                NodeKind::Hmi => NodeKindClass::Hmi,
            })
            .collect();
        let mut host_rows = Vec::new();
        let mut server_rows = Vec::new();
        for (i, kind) in node_kinds.iter().enumerate() {
            match kind {
                NodeKindClass::Server => server_rows.push(i),
                NodeKindClass::Workstation | NodeKindClass::Hmi => host_rows.push(i),
            }
        }
        Self {
            node_kinds,
            host_rows,
            server_rows,
        }
    }

    /// Number of nodes the encoder covers.
    pub fn node_count(&self) -> usize {
        self.node_kinds.len()
    }

    /// Encodes one decision point from the current observation and the DBN
    /// filter's beliefs.
    pub fn encode(&self, observation: &Observation, filter: &DbnFilter) -> StateFeatures {
        let mut out = StateFeatures::empty();
        self.encode_into(observation, filter, &mut out);
        out
    }

    /// Encodes one decision point into a caller-owned [`StateFeatures`],
    /// reusing its buffers — the zero-allocation path for per-step action
    /// selection, where the previous encoding is dead the moment the next
    /// observation arrives.
    pub fn encode_into(
        &self,
        observation: &Observation,
        filter: &DbnFilter,
        out: &mut StateFeatures,
    ) {
        let n = self.node_kinds.len();
        if out.nodes.shape() != (n, NODE_FEATURE_DIM) {
            out.nodes = Matrix::zeros(n, NODE_FEATURE_DIM);
        } else {
            out.nodes.fill(0.0);
        }
        out.host_rows.clone_from(&self.host_rows);
        out.server_rows.clone_from(&self.server_rows);

        for (i, kind) in self.node_kinds.iter().enumerate() {
            let belief = filter.beliefs()[i];
            let obs = &observation.nodes[i];
            let row = out.nodes.row_mut(i);
            for (col, b) in belief.iter().enumerate() {
                row[col] = *b as f32;
            }
            // Node type one-hot.
            let type_index = match kind {
                NodeKindClass::Workstation => 0,
                NodeKindClass::Server => 1,
                NodeKindClass::Hmi => 2,
            };
            row[TYPE_COL + type_index] = 1.0;
            Self::write_obs_cols(row, obs);
        }

        Self::encode_plcs(observation, out);
    }

    /// Encodes one decision point reusing the previous step's encoding in
    /// `out`: belief columns are refreshed for every row (the DBN filter
    /// moves every belief every hour), but the observation-derived columns
    /// are rewritten only for rows active this hour or last — every other
    /// row is a quiet carry-over whose columns are already exact. Falls back
    /// to the dense [`NodeFeatureEncoder::encode_into`] whenever the scratch
    /// cannot prove `out` holds the previous hour of the same episode.
    /// Bit-identical to the dense encode in either case.
    pub fn encode_active_into(
        &self,
        observation: &Observation,
        filter: &DbnFilter,
        scratch: &mut EncodeScratch,
        out: &mut StateFeatures,
    ) {
        let n = self.node_kinds.len();
        let chain_valid = scratch.last_time.is_some()
            && scratch.last_time == observation.time.checked_sub(1)
            && out.nodes.shape() == (n, NODE_FEATURE_DIM)
            && out.host_rows.len() + out.server_rows.len() == n
            && observation.nodes.len() == n;
        if chain_valid {
            for i in 0..n {
                let belief = filter.beliefs()[i];
                let row = out.nodes.row_mut(i);
                for (col, b) in belief.iter().enumerate() {
                    row[col] = *b as f32;
                }
            }
            for &i in scratch.prev_active.iter().chain(&observation.active_nodes) {
                if i < n {
                    Self::write_obs_cols(out.nodes.row_mut(i), &observation.nodes[i]);
                }
            }
            Self::encode_plcs(observation, out);
        } else {
            self.encode_into(observation, filter, out);
        }
        scratch.last_time = Some(observation.time);
        scratch.prev_active.clone_from(&observation.active_nodes);
    }

    /// Writes the observation-derived columns (quarantine flag, alert
    /// counts, detection flag) of one node row.
    fn write_obs_cols(row: &mut [f32], obs: &NodeObservation) {
        row[QUARANTINE_COL] = if obs.quarantined { 1.0 } else { 0.0 };
        for (s, count) in obs.alert_counts.iter().enumerate() {
            row[ALERT_COL + s] = (*count as f32).min(5.0) / 5.0;
        }
        row[DETECTION_COL] = if obs.detection() { 1.0 } else { 0.0 };
    }

    /// Encodes the PLC one-hots and the global PLC summary (the PLC block is
    /// small and always encoded densely).
    fn encode_plcs(observation: &Observation, out: &mut StateFeatures) {
        let plc_count = observation.plc_status.len();
        if out.plcs.shape() != (plc_count, PLC_FEATURE_DIM) {
            out.plcs = Matrix::zeros(plc_count, PLC_FEATURE_DIM);
        } else {
            out.plcs.fill(0.0);
        }
        if out.plc_summary.shape() != (1, PLC_SUMMARY_DIM) {
            out.plc_summary = Matrix::zeros(1, PLC_SUMMARY_DIM);
        }
        let mut counts = [0usize; 3];
        for (i, status) in observation.plc_status.iter().enumerate() {
            let idx = match status {
                PlcStatus::Nominal => 0,
                PlcStatus::Disrupted => 1,
                PlcStatus::Destroyed => 2,
            };
            out.plcs.row_mut(i)[idx] = 1.0;
            counts[idx] += 1;
        }
        let denom = plc_count.max(1) as f32;
        let summary = out.plc_summary.row_mut(0);
        summary[0] = counts[0] as f32 / denom;
        summary[1] = counts[1] as f32 / denom;
        summary[2] = counts[2] as f32 / denom;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbn::learn::{learn_model, LearnConfig};
    use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};

    fn fixture() -> (IcsEnvironment, NodeFeatureEncoder, DbnFilter) {
        let sim = SimConfig::tiny().with_max_time(100);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed: 5,
            sim: sim.clone(),
        });
        let env = IcsEnvironment::new(sim.with_seed(3));
        let encoder = NodeFeatureEncoder::new(env.topology());
        let filter = DbnFilter::new(model, env.topology().node_count());
        (env, encoder, filter)
    }

    #[test]
    fn encoding_shapes_match_topology() {
        let (mut env, encoder, mut filter) = fixture();
        let obs = env.reset();
        filter.reset();
        let features = encoder.encode(&obs, &filter);
        assert_eq!(features.node_count(), env.topology().node_count());
        assert_eq!(features.plc_count(), env.topology().plc_count());
        assert_eq!(features.nodes.cols(), NODE_FEATURE_DIM);
        assert_eq!(features.plcs.cols(), PLC_FEATURE_DIM);
        assert_eq!(features.plc_summary.cols(), PLC_SUMMARY_DIM);
        assert_eq!(
            features.host_rows.len() + features.server_rows.len(),
            features.node_count()
        );
        assert_eq!(encoder.node_count(), env.topology().node_count());
    }

    #[test]
    fn encoding_adapts_to_generated_scenario_topologies() {
        use crate::ActionSpace;
        use ics_sim::Scenario;

        for seed in [3u64, 11] {
            let scenario = Scenario::from_seed(seed);
            let sim = scenario.config.clone().with_max_time(40);
            let mut env = ics_sim::IcsEnvironment::new(sim.clone());
            let obs = env.reset();
            let encoder = NodeFeatureEncoder::new(env.topology());
            let model = learn_model(&LearnConfig {
                episodes: 1,
                seed: 5,
                sim,
            });
            let filter = DbnFilter::new(model, env.topology().node_count());
            let features = encoder.encode(&obs, &filter);
            // Every dimension tracks the generated topology, not the paper
            // network.
            assert_eq!(features.node_count(), env.topology().node_count());
            assert_eq!(features.plc_count(), env.topology().plc_count());
            assert_eq!(
                features.host_rows.len(),
                env.topology().node_count() - env.topology().servers().count()
            );
            assert_eq!(features.server_rows.len(), env.topology().servers().count());
            let space = ActionSpace::new(env.topology());
            assert_eq!(
                space.len(),
                1 + crate::actions::ACTIONS_PER_NODE * env.topology().node_count()
                    + crate::actions::ACTIONS_PER_PLC * env.topology().plc_count()
            );
        }
    }

    #[test]
    fn active_row_encoding_matches_dense_encoding() {
        let (mut env, encoder, mut filter) = fixture();
        let _ = env.reset();
        filter.reset();
        let mut scratch = EncodeScratch::new();
        let mut sparse = StateFeatures::empty();
        let n = env.topology().node_count();
        for t in 0..60u64 {
            // Exercise quarantine toggles and investigations alongside the
            // alert stream.
            let mut actions = vec![DefenderAction::NoAction];
            if t % 6 == 0 {
                actions.push(DefenderAction::Mitigate {
                    kind: ics_sim::orchestrator::MitigationKind::Quarantine,
                    node: ics_net::NodeId::from_index((t as usize) % n),
                });
            }
            if t % 4 == 0 {
                actions.push(DefenderAction::Investigate {
                    kind: ics_sim::orchestrator::InvestigationKind::SimpleScan,
                    node: ics_net::NodeId::from_index((t as usize * 3) % n),
                });
            }
            let step = env.step(&actions);
            filter.update(&step.observation);
            encoder.encode_active_into(&step.observation, &filter, &mut scratch, &mut sparse);
            let dense = encoder.encode(&step.observation, &filter);
            assert_eq!(sparse, dense, "sparse encode diverged at t={t}");
        }
    }

    #[test]
    fn plc_summary_reflects_status_fractions() {
        let (mut env, encoder, mut filter) = fixture();
        let obs = env.reset();
        filter.reset();
        let features = encoder.encode(&obs, &filter);
        // All PLCs start nominal.
        assert!((features.plc_summary.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(features.plc_summary.get(0, 1), 0.0);
        assert_eq!(features.plc_summary.get(0, 2), 0.0);
        // Each PLC row is a one-hot.
        for i in 0..features.plc_count() {
            let row_sum: f32 = features.plcs.row(i).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn beliefs_flow_into_node_features() {
        let (mut env, encoder, mut filter) = fixture();
        let _ = env.reset();
        filter.reset();
        // Step a few hours so alerts and beliefs evolve.
        let mut obs = None;
        for _ in 0..30 {
            let step = env.step(&[DefenderAction::NoAction]);
            filter.update(&step.observation);
            obs = Some(step.observation);
        }
        let features = encoder.encode(&obs.unwrap(), &filter);
        // The first CompromiseClass::COUNT columns of each row are the belief
        // and must sum to one.
        for i in 0..features.node_count() {
            let belief_sum: f32 = features.nodes.row(i)[..CompromiseClass::COUNT].iter().sum();
            assert!(
                (belief_sum - 1.0).abs() < 1e-4,
                "row {i} belief sum {belief_sum}"
            );
        }
    }
}
