//! The augmented-DQN training loop of §4.2.
//!
//! Training interleaves environment interaction with gradient updates: the
//! agent selects ε-greedy actions, transitions (with the shaping reward of
//! eq. 6 added) flow through the n-step accumulator into prioritized replay,
//! and every few steps a double-DQN update is applied. Only the task reward
//! is reported in the returned history, matching the paper's evaluation rule.

use crate::actions::ActionSpace;
use crate::agent::{AcsoAgent, AgentConfig, AttentionQNet, QNetwork};
use crate::snapshot;
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnModel;
use ics_sim::{IcsEnvironment, SimConfig};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;

/// Configuration of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Simulation configuration to train in.
    pub sim: SimConfig,
    /// Agent/learner configuration.
    pub agent: AgentConfig,
    /// Number of training episodes.
    pub episodes: usize,
    /// Number of random-defender episodes used to fit the DBN filter before
    /// training starts (the paper uses 1 000).
    pub dbn_episodes: usize,
    /// Worker threads for the DBN data-collection fan-out. `None` uses
    /// `ACSO_THREADS`/available parallelism; callers that already run inside
    /// a thread pool (the grid search) pin this to `Some(1)` so nested
    /// fan-outs do not oversubscribe the machine.
    pub dbn_threads: Option<usize>,
    /// Seed for environment and DBN data collection.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's training setup: the §4.2 small network for tuning, paper
    /// DQN hyper-parameters. The episode count is the main knob to trade
    /// fidelity for wall-clock time.
    pub fn paper_small(episodes: usize) -> Self {
        Self {
            sim: SimConfig::small(),
            agent: AgentConfig::default(),
            episodes,
            dbn_episodes: 50,
            dbn_threads: None,
            seed: 0,
        }
    }

    /// A fast smoke-training setup used by tests and quick experiment runs:
    /// tiny network, short episodes, small replay warm-up.
    pub fn smoke(episodes: usize) -> Self {
        Self {
            sim: SimConfig::tiny().with_max_time(200),
            agent: AgentConfig::smoke(),
            episodes,
            dbn_episodes: 2,
            dbn_threads: None,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.agent.seed = seed;
        self
    }
}

/// History of a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Discounted task return of each training episode (no shaping).
    pub episode_returns: Vec<f64>,
    /// Mean TD loss of each training episode (0 when no update ran).
    pub episode_losses: Vec<f32>,
    /// Total environment steps consumed.
    pub env_steps: u64,
    /// Total gradient updates applied.
    pub updates: u64,
}

impl TrainReport {
    /// Mean return over the last `n` episodes (or all if fewer).
    pub fn recent_mean_return(&self, n: usize) -> f64 {
        if self.episode_returns.is_empty() {
            return 0.0;
        }
        let tail: Vec<f64> = self
            .episode_returns
            .iter()
            .rev()
            .take(n.max(1))
            .copied()
            .collect();
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Periodic checkpointing of a training run.
///
/// A checkpoint is an `ACSOSNAP` container (see [`crate::snapshot`]) written
/// atomically to `path` every `every_episodes` episodes and again after the
/// final one. Restoring it and continuing is bit-identical to never having
/// stopped — the contract `tests/resume_determinism.rs` pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Where the snapshot lives. Writes go through a sibling `.tmp` file and
    /// a rename, so a crash mid-write leaves the previous checkpoint intact.
    pub path: PathBuf,
    /// Checkpoint cadence in episodes (must be at least 1).
    pub every_episodes: usize,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every `every_episodes` episodes.
    pub fn new(path: impl Into<PathBuf>, every_episodes: usize) -> Self {
        assert!(every_episodes > 0, "checkpoint cadence must be positive");
        Self {
            path: path.into(),
            every_episodes,
        }
    }
}

/// Trains an agent that already wraps a Q-network. Returns the training
/// history; the agent is trained in place.
///
/// The episode loop is inherently serial — each episode's ε-greedy decisions
/// depend on everything learned before it — so unlike evaluation it does not
/// fan out over the rollout engine. The gradient step, however, is
/// batch-first: every DQN update runs one stacked forward and one stacked
/// backward over the whole minibatch (see [`crate::agent::UpdateMode`];
/// `ACSO_TRAIN_BATCH=0` selects the bit-identical per-sample reference
/// loop). The parallelism in a training run lives in the DBN
/// data-collection phase ([`dbn::learn::learn_model`] fans episodes over
/// `ACSO_THREADS` workers) and, one level up, in
/// [`crate::experiments::grid_search`] running independent training
/// configurations concurrently. Per-episode seeds use the engine's
/// derivation so the environment stream depends only on the episode index.
pub fn train_agent<N: QNetwork + Clone>(
    agent: &mut AcsoAgent<N>,
    sim: &SimConfig,
    episodes: usize,
    seed: u64,
) -> TrainReport {
    let mut report = TrainReport::default();
    run_episodes(agent, sim, episodes, seed, &mut report, None)
        .expect("no checkpoint configured, so no I/O can fail");
    report
}

/// Trains with periodic crash-recovery checkpoints, optionally resuming from
/// an existing one.
///
/// With `resume` set and a readable snapshot at `checkpoint.path`, the
/// agent's full learning state (networks, optimizer moments, replay ring and
/// arena, schedules, RNG stream position) is restored and training continues
/// from the episode after the checkpoint — per-episode environment seeds
/// depend only on the episode index, so the continuation replays exactly the
/// stream an uninterrupted run would have seen. Resuming a checkpoint that
/// already covers `episodes` episodes trains nothing further and returns its
/// report.
///
/// # Errors
///
/// Propagates snapshot I/O failures; with `resume`, also a missing, torn or
/// corrupt checkpoint (a torn write is caught by the container digest before
/// any state is touched, so the agent is left as constructed and the caller
/// may fall back to a cold start).
pub fn train_agent_checkpointed<N: QNetwork + Clone>(
    agent: &mut AcsoAgent<N>,
    sim: &SimConfig,
    episodes: usize,
    seed: u64,
    checkpoint: &CheckpointConfig,
    resume: bool,
) -> io::Result<TrainReport> {
    let mut report = TrainReport::default();
    if resume {
        let bytes = std::fs::read(&checkpoint.path)?;
        report = snapshot::decode_train_checkpoint(agent, &bytes)?;
    }
    run_episodes(agent, sim, episodes, seed, &mut report, Some(checkpoint))?;
    Ok(report)
}

/// The shared episode loop. `report` may already carry completed episodes (a
/// resumed run); the loop continues from that point so per-episode seeds line
/// up with an uninterrupted run.
fn run_episodes<N: QNetwork + Clone>(
    agent: &mut AcsoAgent<N>,
    sim: &SimConfig,
    episodes: usize,
    seed: u64,
    report: &mut TrainReport,
    checkpoint: Option<&CheckpointConfig>,
) -> io::Result<()> {
    let start = report.episode_returns.len();
    agent.set_explore(true);

    for episode in start..episodes {
        let sim = sim
            .clone()
            .with_seed(acso_runtime::episode_seed(seed, episode));
        let mut env = IcsEnvironment::new(sim);
        let gamma = env.gamma();
        agent.begin_episode();
        let obs = env.reset();
        let (mut action, mut state) = agent.select_action(&obs);

        let mut discounted_return = 0.0;
        let mut discount = 1.0;
        loop {
            let step = env.step(&[agent.action_space().decode(action)]);
            discounted_return += discount * step.reward;
            discount *= gamma;

            // Each decision point is encoded into the replay arena exactly
            // once; its id links this transition's next state to the next
            // transition's start state with no feature clone.
            let (next_action, next_state) = agent.select_action(&step.observation);
            agent.store_transition(
                state,
                action,
                step.reward + step.shaping_reward,
                next_state,
                step.done,
            );
            agent.maybe_train();

            action = next_action;
            state = next_state;
            if step.done {
                break;
            }
        }
        report.episode_returns.push(discounted_return);
        report.episode_losses.push(agent.recent_loss());
        agent.end_episode();

        if let Some(config) = checkpoint {
            let done = episode + 1;
            if done % config.every_episodes == 0 || done == episodes {
                report.env_steps = agent.env_steps();
                report.updates = agent.updates();
                let bytes = snapshot::encode_train_checkpoint(agent, report);
                snapshot::write_atomic(&config.path, &bytes)?;
            }
        }
    }
    report.env_steps = agent.env_steps();
    report.updates = agent.updates();
    agent.set_explore(false);
    Ok(())
}

/// A trained ACSO defender together with the artefacts needed to reuse it.
pub struct TrainedAcso {
    /// The trained agent (exploration disabled, ready for evaluation).
    pub agent: AcsoAgent<AttentionQNet>,
    /// The DBN model fitted before training.
    pub dbn_model: DbnModel,
    /// The training history.
    pub report: TrainReport,
}

/// End-to-end training of the attention-based ACSO: fit the DBN filter from
/// random-defender episodes, then run the augmented DQN loop.
pub fn train_attention_acso(config: &TrainConfig) -> TrainedAcso {
    let learn_config = LearnConfig {
        episodes: config.dbn_episodes,
        seed: config.seed,
        sim: config.sim.clone(),
    };
    let dbn_model = match config.dbn_threads {
        Some(threads) => dbn::learn::learn_model_with_threads(&learn_config, threads),
        None => learn_model(&learn_config),
    };
    let env = IcsEnvironment::new(config.sim.clone().with_seed(config.seed));
    let action_space = ActionSpace::new(env.topology());
    let network = AttentionQNet::new(action_space, config.seed);
    let mut agent = AcsoAgent::new(
        env.topology(),
        dbn_model.clone(),
        network,
        config.agent.clone(),
    );
    let report = train_agent(&mut agent, &config.sim, config.episodes, config.seed);
    TrainedAcso {
        agent,
        dbn_model,
        report,
    }
}

/// [`train_attention_acso`] with crash-recovery checkpoints.
///
/// The DBN fit, environment and network construction are all deterministic
/// in `config`, so a restarted process rebuilds an identical cold agent and
/// — when `resume` finds a checkpoint — restores the saved learning state on
/// top of it and continues bit-identically.
///
/// # Errors
///
/// See [`train_agent_checkpointed`].
pub fn train_attention_acso_checkpointed(
    config: &TrainConfig,
    checkpoint: &CheckpointConfig,
    resume: bool,
) -> io::Result<TrainedAcso> {
    let learn_config = LearnConfig {
        episodes: config.dbn_episodes,
        seed: config.seed,
        sim: config.sim.clone(),
    };
    let dbn_model = match config.dbn_threads {
        Some(threads) => dbn::learn::learn_model_with_threads(&learn_config, threads),
        None => learn_model(&learn_config),
    };
    let env = IcsEnvironment::new(config.sim.clone().with_seed(config.seed));
    let action_space = ActionSpace::new(env.topology());
    let network = AttentionQNet::new(action_space, config.seed);
    let mut agent = AcsoAgent::new(
        env.topology(),
        dbn_model.clone(),
        network,
        config.agent.clone(),
    );
    let report = train_agent_checkpointed(
        &mut agent,
        &config.sim,
        config.episodes,
        config.seed,
        checkpoint,
        resume,
    )?;
    Ok(TrainedAcso {
        agent,
        dbn_model,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_training_runs_end_to_end() {
        let config = TrainConfig::smoke(2).with_seed(3);
        let trained = train_attention_acso(&config);
        assert_eq!(trained.report.episode_returns.len(), 2);
        assert!(trained.report.env_steps >= 400);
        assert!(trained.report.updates > 0, "training should apply updates");
        assert!(trained.report.recent_mean_return(2).is_finite());
        // Exploration is disabled after training so the agent is ready for
        // greedy evaluation.
        assert!(trained.agent.epsilon() < 1.0);
    }

    #[test]
    fn train_report_recent_mean() {
        let report = TrainReport {
            episode_returns: vec![1.0, 2.0, 3.0, 4.0],
            ..TrainReport::default()
        };
        assert!((report.recent_mean_return(2) - 3.5).abs() < 1e-12);
        assert!((report.recent_mean_return(10) - 2.5).abs() < 1e-12);
        assert_eq!(TrainReport::default().recent_mean_return(3), 0.0);
    }
}
