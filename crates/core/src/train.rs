//! The augmented-DQN training loop of §4.2.
//!
//! Training interleaves environment interaction with gradient updates: the
//! agent selects ε-greedy actions, transitions (with the shaping reward of
//! eq. 6 added) flow through the n-step accumulator into prioritized replay,
//! and every few steps a double-DQN update is applied. Only the task reward
//! is reported in the returned history, matching the paper's evaluation rule.

use crate::actions::ActionSpace;
use crate::agent::{AcsoAgent, AgentConfig, AttentionQNet, QNetwork};
use dbn::learn::{learn_model, LearnConfig};
use dbn::DbnModel;
use ics_sim::{IcsEnvironment, SimConfig};
use serde::{Deserialize, Serialize};

/// Configuration of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Simulation configuration to train in.
    pub sim: SimConfig,
    /// Agent/learner configuration.
    pub agent: AgentConfig,
    /// Number of training episodes.
    pub episodes: usize,
    /// Number of random-defender episodes used to fit the DBN filter before
    /// training starts (the paper uses 1 000).
    pub dbn_episodes: usize,
    /// Worker threads for the DBN data-collection fan-out. `None` uses
    /// `ACSO_THREADS`/available parallelism; callers that already run inside
    /// a thread pool (the grid search) pin this to `Some(1)` so nested
    /// fan-outs do not oversubscribe the machine.
    pub dbn_threads: Option<usize>,
    /// Seed for environment and DBN data collection.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's training setup: the §4.2 small network for tuning, paper
    /// DQN hyper-parameters. The episode count is the main knob to trade
    /// fidelity for wall-clock time.
    pub fn paper_small(episodes: usize) -> Self {
        Self {
            sim: SimConfig::small(),
            agent: AgentConfig::default(),
            episodes,
            dbn_episodes: 50,
            dbn_threads: None,
            seed: 0,
        }
    }

    /// A fast smoke-training setup used by tests and quick experiment runs:
    /// tiny network, short episodes, small replay warm-up.
    pub fn smoke(episodes: usize) -> Self {
        Self {
            sim: SimConfig::tiny().with_max_time(200),
            agent: AgentConfig::smoke(),
            episodes,
            dbn_episodes: 2,
            dbn_threads: None,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.agent.seed = seed;
        self
    }
}

/// History of a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Discounted task return of each training episode (no shaping).
    pub episode_returns: Vec<f64>,
    /// Mean TD loss of each training episode (0 when no update ran).
    pub episode_losses: Vec<f32>,
    /// Total environment steps consumed.
    pub env_steps: u64,
    /// Total gradient updates applied.
    pub updates: u64,
}

impl TrainReport {
    /// Mean return over the last `n` episodes (or all if fewer).
    pub fn recent_mean_return(&self, n: usize) -> f64 {
        if self.episode_returns.is_empty() {
            return 0.0;
        }
        let tail: Vec<f64> = self
            .episode_returns
            .iter()
            .rev()
            .take(n.max(1))
            .copied()
            .collect();
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Trains an agent that already wraps a Q-network. Returns the training
/// history; the agent is trained in place.
///
/// The episode loop is inherently serial — each episode's ε-greedy decisions
/// depend on everything learned before it — so unlike evaluation it does not
/// fan out over the rollout engine. The gradient step, however, is
/// batch-first: every DQN update runs one stacked forward and one stacked
/// backward over the whole minibatch (see [`crate::agent::UpdateMode`];
/// `ACSO_TRAIN_BATCH=0` selects the bit-identical per-sample reference
/// loop). The parallelism in a training run lives in the DBN
/// data-collection phase ([`dbn::learn::learn_model`] fans episodes over
/// `ACSO_THREADS` workers) and, one level up, in
/// [`crate::experiments::grid_search`] running independent training
/// configurations concurrently. Per-episode seeds use the engine's
/// derivation so the environment stream depends only on the episode index.
pub fn train_agent<N: QNetwork + Clone>(
    agent: &mut AcsoAgent<N>,
    sim: &SimConfig,
    episodes: usize,
    seed: u64,
) -> TrainReport {
    let mut report = TrainReport::default();
    agent.set_explore(true);

    for episode in 0..episodes {
        let sim = sim
            .clone()
            .with_seed(acso_runtime::episode_seed(seed, episode));
        let mut env = IcsEnvironment::new(sim);
        let gamma = env.gamma();
        agent.begin_episode();
        let obs = env.reset();
        let (mut action, mut state) = agent.select_action(&obs);

        let mut discounted_return = 0.0;
        let mut discount = 1.0;
        loop {
            let step = env.step(&[agent.action_space().decode(action)]);
            discounted_return += discount * step.reward;
            discount *= gamma;

            // Each decision point is encoded into the replay arena exactly
            // once; its id links this transition's next state to the next
            // transition's start state with no feature clone.
            let (next_action, next_state) = agent.select_action(&step.observation);
            agent.store_transition(
                state,
                action,
                step.reward + step.shaping_reward,
                next_state,
                step.done,
            );
            agent.maybe_train();

            action = next_action;
            state = next_state;
            if step.done {
                break;
            }
        }
        report.episode_returns.push(discounted_return);
        report.episode_losses.push(agent.recent_loss());
        agent.end_episode();
    }
    report.env_steps = agent.env_steps();
    report.updates = agent.updates();
    agent.set_explore(false);
    report
}

/// A trained ACSO defender together with the artefacts needed to reuse it.
pub struct TrainedAcso {
    /// The trained agent (exploration disabled, ready for evaluation).
    pub agent: AcsoAgent<AttentionQNet>,
    /// The DBN model fitted before training.
    pub dbn_model: DbnModel,
    /// The training history.
    pub report: TrainReport,
}

/// End-to-end training of the attention-based ACSO: fit the DBN filter from
/// random-defender episodes, then run the augmented DQN loop.
pub fn train_attention_acso(config: &TrainConfig) -> TrainedAcso {
    let learn_config = LearnConfig {
        episodes: config.dbn_episodes,
        seed: config.seed,
        sim: config.sim.clone(),
    };
    let dbn_model = match config.dbn_threads {
        Some(threads) => dbn::learn::learn_model_with_threads(&learn_config, threads),
        None => learn_model(&learn_config),
    };
    let env = IcsEnvironment::new(config.sim.clone().with_seed(config.seed));
    let action_space = ActionSpace::new(env.topology());
    let network = AttentionQNet::new(action_space, config.seed);
    let mut agent = AcsoAgent::new(
        env.topology(),
        dbn_model.clone(),
        network,
        config.agent.clone(),
    );
    let report = train_agent(&mut agent, &config.sim, config.episodes, config.seed);
    TrainedAcso {
        agent,
        dbn_model,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_training_runs_end_to_end() {
        let config = TrainConfig::smoke(2).with_seed(3);
        let trained = train_attention_acso(&config);
        assert_eq!(trained.report.episode_returns.len(), 2);
        assert!(trained.report.env_steps >= 400);
        assert!(trained.report.updates > 0, "training should apply updates");
        assert!(trained.report.recent_mean_return(2).is_finite());
        // Exploration is disabled after training so the agent is ready for
        // greedy evaluation.
        assert!(trained.agent.epsilon() < 1.0);
    }

    #[test]
    fn train_report_recent_mean() {
        let report = TrainReport {
            episode_returns: vec![1.0, 2.0, 3.0, 4.0],
            ..TrainReport::default()
        };
        assert!((report.recent_mean_return(2) - 3.5).abs() < 1e-12);
        assert!((report.recent_mean_return(10) - 2.5).abs() < 1e-12);
        assert_eq!(TrainReport::default().recent_mean_return(3), 0.0);
    }
}
