//! The baseline defender policies of §5.1: semi-random, playbook, and
//! DBN-expert.

mod expert;
mod playbook;
mod random;

pub use expert::DbnExpertPolicy;
pub use playbook::PlaybookPolicy;
pub use random::SemiRandomPolicy;
