//! The semi-random baseline: independent analysts and users taking
//! uncoordinated actions across the network.

use crate::policy::DefenderPolicy;
use ics_net::{NodeId, PlcId, Topology};
use ics_sim::orchestrator::{DefenderAction, InvestigationKind, MitigationKind, PlcRecoveryKind};
use ics_sim::{Observation, PlcStatus};
use rand::rngs::StdRng;
use rand::Rng;

/// The paper's random baseline: each hour, every node independently receives
/// a random action with a small probability, with the action type drawn from
/// a static categorical distribution. Observed offline PLCs are repaired with
/// the same per-object probability.
#[derive(Debug, Clone)]
pub struct SemiRandomPolicy {
    /// Probability that any given node receives an action in a given hour.
    activity_rate: f64,
}

impl SemiRandomPolicy {
    /// Creates the baseline with the activity rate used for Table 2
    /// (roughly ten uncoordinated actions per hour on the full network).
    pub fn new() -> Self {
        Self { activity_rate: 0.3 }
    }

    /// Creates the baseline with a custom per-node activity rate.
    pub fn with_activity_rate(activity_rate: f64) -> Self {
        Self { activity_rate }
    }

    fn random_node_action(node: NodeId, rng: &mut StdRng) -> DefenderAction {
        match rng.gen_range(0..10u32) {
            0..=3 => DefenderAction::Investigate {
                kind: InvestigationKind::SimpleScan,
                node,
            },
            4..=5 => DefenderAction::Investigate {
                kind: InvestigationKind::AdvancedScan,
                node,
            },
            6 => DefenderAction::Investigate {
                kind: InvestigationKind::HumanAnalysis,
                node,
            },
            7..=8 => DefenderAction::Mitigate {
                kind: MitigationKind::Reboot,
                node,
            },
            _ => DefenderAction::Mitigate {
                kind: MitigationKind::ResetPassword,
                node,
            },
        }
    }
}

impl Default for SemiRandomPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl DefenderPolicy for SemiRandomPolicy {
    fn name(&self) -> &str {
        "Semi Random"
    }

    fn reset(&mut self, _topology: &Topology) {}

    fn decide(
        &mut self,
        observation: &Observation,
        topology: &Topology,
        rng: &mut StdRng,
    ) -> Vec<DefenderAction> {
        let mut actions = Vec::new();
        for node in topology.node_ids() {
            if rng.gen_bool(self.activity_rate) {
                actions.push(Self::random_node_action(node, rng));
            }
        }
        for (i, status) in observation.plc_status.iter().enumerate() {
            if status.is_offline() && rng.gen_bool(self.activity_rate) {
                actions.push(DefenderAction::RecoverPlc {
                    kind: if *status == PlcStatus::Destroyed {
                        PlcRecoveryKind::ReplacePlc
                    } else {
                        PlcRecoveryKind::ResetPlc
                    },
                    plc: PlcId::from_index(i),
                });
            }
        }
        if actions.is_empty() {
            actions.push(DefenderAction::NoAction);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ics_net::TopologySpec;
    use rand::SeedableRng;

    #[test]
    fn generates_uncoordinated_actions_every_hour() {
        let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
        let mut policy = SemiRandomPolicy::new();
        policy.reset(&topo);
        let obs = Observation {
            time: 1,
            nodes: Vec::new(),
            plc_status: vec![PlcStatus::Nominal; topo.plc_count()],
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0;
        for _ in 0..20 {
            total += policy.decide(&obs, &topo, &mut rng).len();
        }
        let per_hour = total as f64 / 20.0;
        assert!(
            per_hour > 5.0 && per_hour < 16.0,
            "unexpected rate {per_hour}"
        );
        assert_eq!(policy.name(), "Semi Random");
    }

    #[test]
    fn repairs_offline_plcs_with_matching_action() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = SemiRandomPolicy::with_activity_rate(1.0);
        let mut plc_status = vec![PlcStatus::Nominal; topo.plc_count()];
        plc_status[0] = PlcStatus::Destroyed;
        plc_status[1] = PlcStatus::Disrupted;
        let obs = Observation {
            time: 1,
            nodes: Vec::new(),
            plc_status,
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let actions = policy.decide(&obs, &topo, &mut rng);
        let replace = actions.iter().any(|a| {
            matches!(
                a,
                DefenderAction::RecoverPlc {
                    kind: PlcRecoveryKind::ReplacePlc,
                    plc
                } if plc.index() == 0
            )
        });
        let reset = actions.iter().any(|a| {
            matches!(
                a,
                DefenderAction::RecoverPlc {
                    kind: PlcRecoveryKind::ResetPlc,
                    plc
                } if plc.index() == 1
            )
        });
        assert!(replace && reset);
    }

    #[test]
    fn never_returns_an_empty_action_list() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = SemiRandomPolicy::with_activity_rate(0.0);
        let obs = Observation {
            time: 1,
            nodes: Vec::new(),
            plc_status: vec![PlcStatus::Nominal; topo.plc_count()],
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            policy.decide(&obs, &topo, &mut rng),
            vec![DefenderAction::NoAction]
        );
    }
}
