//! The DBN-expert baseline: act on the filter's compromise beliefs with
//! hand-written rules (§5.1).

use crate::policy::DefenderPolicy;
use dbn::{DbnFilter, DbnModel};
use ics_net::{NodeId, PlcId, Topology};
use ics_sim::orchestrator::{DefenderAction, InvestigationKind, MitigationKind, PlcRecoveryKind};
use ics_sim::{CompromiseClass, Observation, PlcStatus};
use rand::rngs::StdRng;
use rand::Rng;

/// The expert policy: the DBN estimates each node's compromise state and the
/// most appropriate mitigation is chosen for the believed state — a reboot
/// for plain compromise, a password reset when reboot persistence is likely,
/// a re-image when credential persistence is likely. Mid-confidence nodes are
/// investigated.
#[derive(Debug, Clone)]
pub struct DbnExpertPolicy {
    model: DbnModel,
    filter: Option<DbnFilter>,
    /// Belief threshold above which a mitigation is taken.
    act_threshold: f64,
    /// Belief threshold above which an investigation is launched.
    investigate_threshold: f64,
}

impl DbnExpertPolicy {
    /// Creates the expert with the thresholds used for the paper comparison.
    pub fn new(model: DbnModel) -> Self {
        Self {
            model,
            filter: None,
            act_threshold: 0.65,
            investigate_threshold: 0.25,
        }
    }

    /// Overrides the mitigation threshold (a lower threshold gives a more
    /// aggressive defender).
    pub fn with_act_threshold(mut self, threshold: f64) -> Self {
        self.act_threshold = threshold;
        self
    }

    fn mitigation_for_class(class: CompromiseClass, node: NodeId) -> Option<DefenderAction> {
        let kind = match class {
            CompromiseClass::Clean | CompromiseClass::Scanned => return None,
            CompromiseClass::Compromised => MitigationKind::Reboot,
            CompromiseClass::CompromisedPersistent | CompromiseClass::Admin => {
                MitigationKind::ResetPassword
            }
            CompromiseClass::AdminPersistent => MitigationKind::ReimageNode,
        };
        Some(DefenderAction::Mitigate { kind, node })
    }
}

impl DefenderPolicy for DbnExpertPolicy {
    fn name(&self) -> &str {
        "DBN Expert"
    }

    fn reset(&mut self, topology: &Topology) {
        self.filter = Some(DbnFilter::new(self.model.clone(), topology.node_count()));
    }

    fn decide(
        &mut self,
        observation: &Observation,
        topology: &Topology,
        rng: &mut StdRng,
    ) -> Vec<DefenderAction> {
        if self.filter.is_none() {
            self.reset(topology);
        }
        let filter = self.filter.as_mut().expect("filter initialised above");
        filter.update(observation);

        let mut actions = Vec::new();
        for idx in 0..topology.node_count() {
            let node = NodeId::from_index(idx);
            let p = filter.compromise_probability(node);
            if p >= self.act_threshold {
                if let Some(action) = Self::mitigation_for_class(filter.map_estimate(node), node) {
                    actions.push(action);
                }
            } else if p >= self.investigate_threshold && rng.gen_bool(0.5) {
                actions.push(DefenderAction::Investigate {
                    kind: InvestigationKind::AdvancedScan,
                    node,
                });
            }
        }

        for (i, status) in observation.plc_status.iter().enumerate() {
            match status {
                PlcStatus::Disrupted => actions.push(DefenderAction::RecoverPlc {
                    kind: PlcRecoveryKind::ResetPlc,
                    plc: PlcId::from_index(i),
                }),
                PlcStatus::Destroyed => actions.push(DefenderAction::RecoverPlc {
                    kind: PlcRecoveryKind::ReplacePlc,
                    plc: PlcId::from_index(i),
                }),
                PlcStatus::Nominal => {}
            }
        }

        if actions.is_empty() {
            actions.push(DefenderAction::NoAction);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbn::learn::{learn_model, LearnConfig};
    use ics_net::TopologySpec;
    use ics_sim::observation::NodeObservation;
    use ics_sim::SimConfig;
    use rand::SeedableRng;

    fn model() -> DbnModel {
        // Four episodes, not two: with fewer the learned CPTs can leave the
        // five non-clean classes exactly tied, in which case the MAP estimate
        // degenerates to `Scanned` and the expert (correctly) never
        // mitigates. The tests need a model that can tell the classes apart.
        learn_model(&LearnConfig {
            episodes: 4,
            seed: 4,
            sim: SimConfig::tiny().with_max_time(150),
        })
    }

    fn quiet_observation(topo: &Topology) -> Observation {
        Observation {
            time: 1,
            nodes: topo
                .node_ids()
                .map(|id| NodeObservation::quiet(id, false))
                .collect(),
            plc_status: vec![PlcStatus::Nominal; topo.plc_count()],
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        }
    }

    #[test]
    fn quiet_network_leads_to_little_action() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = DbnExpertPolicy::new(model());
        policy.reset(&topo);
        let mut rng = StdRng::seed_from_u64(0);
        let actions = policy.decide(&quiet_observation(&topo), &topo, &mut rng);
        // At most a handful of speculative scans; no mitigations.
        assert!(actions
            .iter()
            .all(|a| !matches!(a, DefenderAction::Mitigate { .. })));
        assert_eq!(policy.name(), "DBN Expert");
    }

    #[test]
    fn persistent_alerts_eventually_trigger_mitigation() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = DbnExpertPolicy::new(model()).with_act_threshold(0.5);
        policy.reset(&topo);
        let mut rng = StdRng::seed_from_u64(1);
        let mut acted = false;
        for _ in 0..30 {
            let mut obs = quiet_observation(&topo);
            obs.nodes[0].alert_counts = [0, 2, 1];
            obs.nodes[0].investigation = Some((InvestigationKind::HumanAnalysis, true));
            let actions = policy.decide(&obs, &topo, &mut rng);
            if actions
                .iter()
                .any(|a| matches!(a, DefenderAction::Mitigate { node, .. } if node.index() == 0))
            {
                acted = true;
                break;
            }
        }
        assert!(acted, "expert never mitigated a persistently-alerting node");
    }

    #[test]
    fn mitigation_matches_believed_class() {
        let node = NodeId::from_index(0);
        assert_eq!(
            DbnExpertPolicy::mitigation_for_class(CompromiseClass::Compromised, node),
            Some(DefenderAction::Mitigate {
                kind: MitigationKind::Reboot,
                node
            })
        );
        assert_eq!(
            DbnExpertPolicy::mitigation_for_class(CompromiseClass::AdminPersistent, node),
            Some(DefenderAction::Mitigate {
                kind: MitigationKind::ReimageNode,
                node
            })
        );
        assert_eq!(
            DbnExpertPolicy::mitigation_for_class(CompromiseClass::Clean, node),
            None
        );
    }

    #[test]
    fn repairs_offline_plcs() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = DbnExpertPolicy::new(model());
        policy.reset(&topo);
        let mut rng = StdRng::seed_from_u64(3);
        let mut obs = quiet_observation(&topo);
        obs.plc_status[0] = PlcStatus::Disrupted;
        let actions = policy.decide(&obs, &topo, &mut rng);
        assert!(actions.contains(&DefenderAction::RecoverPlc {
            kind: PlcRecoveryKind::ResetPlc,
            plc: PlcId::from_index(0)
        }));
    }
}
