//! The security-automation playbook baseline (Fig. 9).
//!
//! A fixed course of action (COA) is triggered by the first alert seen on a
//! node: scan, then — if the scan detects a compromise — apply the next
//! mitigation on an escalation ladder (reboot, reset password, re-image) and
//! scan again, terminating when a scan comes back clean. The investigation
//! used to open the COA scales with the severity of the triggering alert.

use crate::policy::DefenderPolicy;
use ics_net::{NodeId, PlcId, Topology};
use ics_sim::orchestrator::{DefenderAction, InvestigationKind, MitigationKind, PlcRecoveryKind};
use ics_sim::{Observation, PlcStatus};
use rand::rngs::StdRng;

/// Per-node course-of-action state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoaState {
    /// No COA running on the node.
    Idle,
    /// A scan has been issued; waiting for its result.
    AwaitingScan,
    /// A mitigation has been issued; waiting for it to complete.
    AwaitingMitigation,
}

/// The playbook defender.
#[derive(Debug, Clone)]
pub struct PlaybookPolicy {
    states: Vec<CoaState>,
    escalation: Vec<usize>,
}

impl PlaybookPolicy {
    /// Creates the playbook policy.
    pub fn new() -> Self {
        Self {
            states: Vec::new(),
            escalation: Vec::new(),
        }
    }

    fn scan_for_severity(severity: u8, node: NodeId) -> DefenderAction {
        let kind = match severity {
            0 | 1 => InvestigationKind::SimpleScan,
            2 => InvestigationKind::AdvancedScan,
            _ => InvestigationKind::HumanAnalysis,
        };
        DefenderAction::Investigate { kind, node }
    }

    fn mitigation_for_escalation(level: usize, node: NodeId) -> DefenderAction {
        let kind = match level {
            0 => MitigationKind::Reboot,
            1 => MitigationKind::ResetPassword,
            _ => MitigationKind::ReimageNode,
        };
        DefenderAction::Mitigate { kind, node }
    }
}

impl Default for PlaybookPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl DefenderPolicy for PlaybookPolicy {
    fn name(&self) -> &str {
        "Playbook"
    }

    fn reset(&mut self, topology: &Topology) {
        self.states = vec![CoaState::Idle; topology.node_count()];
        self.escalation = vec![0; topology.node_count()];
    }

    fn decide(
        &mut self,
        observation: &Observation,
        topology: &Topology,
        _rng: &mut StdRng,
    ) -> Vec<DefenderAction> {
        if self.states.len() != topology.node_count() {
            self.reset(topology);
        }
        let mut actions = Vec::new();

        for (idx, node_obs) in observation.nodes.iter().enumerate() {
            let node = NodeId::from_index(idx);
            match self.states[idx] {
                CoaState::Idle => {
                    if node_obs.total_alerts() > 0 {
                        actions.push(Self::scan_for_severity(node_obs.max_severity(), node));
                        self.states[idx] = CoaState::AwaitingScan;
                        self.escalation[idx] = 0;
                    }
                }
                CoaState::AwaitingScan => {
                    if let Some((_, detected)) = node_obs.investigation {
                        if detected {
                            actions
                                .push(Self::mitigation_for_escalation(self.escalation[idx], node));
                            self.escalation[idx] += 1;
                            self.states[idx] = CoaState::AwaitingMitigation;
                        } else {
                            self.states[idx] = CoaState::Idle;
                            self.escalation[idx] = 0;
                        }
                    }
                }
                CoaState::AwaitingMitigation => {
                    if node_obs.mitigation.is_some() {
                        // Verify the mitigation worked before closing the COA.
                        actions.push(Self::scan_for_severity(2, node));
                        self.states[idx] = CoaState::AwaitingScan;
                    }
                }
            }
        }

        // PLC state is directly observable: repair anything offline.
        for (i, status) in observation.plc_status.iter().enumerate() {
            match status {
                PlcStatus::Disrupted => actions.push(DefenderAction::RecoverPlc {
                    kind: PlcRecoveryKind::ResetPlc,
                    plc: PlcId::from_index(i),
                }),
                PlcStatus::Destroyed => actions.push(DefenderAction::RecoverPlc {
                    kind: PlcRecoveryKind::ReplacePlc,
                    plc: PlcId::from_index(i),
                }),
                PlcStatus::Nominal => {}
            }
        }

        if actions.is_empty() {
            actions.push(DefenderAction::NoAction);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ics_net::TopologySpec;
    use ics_sim::observation::NodeObservation;
    use rand::SeedableRng;

    fn quiet_observation(topo: &Topology) -> Observation {
        Observation {
            time: 1,
            nodes: topo
                .node_ids()
                .map(|id| NodeObservation::quiet(id, false))
                .collect(),
            plc_status: vec![PlcStatus::Nominal; topo.plc_count()],
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        }
    }

    #[test]
    fn alert_triggers_scan_then_escalating_mitigations() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = PlaybookPolicy::new();
        policy.reset(&topo);
        let mut rng = StdRng::seed_from_u64(0);
        let node = NodeId::from_index(0);

        // Step 1: a severity-2 alert opens the COA with an advanced scan.
        let mut obs = quiet_observation(&topo);
        obs.nodes[0].alert_counts = [0, 1, 0];
        let actions = policy.decide(&obs, &topo, &mut rng);
        assert_eq!(
            actions[0],
            DefenderAction::Investigate {
                kind: InvestigationKind::AdvancedScan,
                node
            }
        );

        // Step 2: the scan detects -> reboot.
        let mut obs = quiet_observation(&topo);
        obs.nodes[0].investigation = Some((InvestigationKind::AdvancedScan, true));
        let actions = policy.decide(&obs, &topo, &mut rng);
        assert_eq!(
            actions[0],
            DefenderAction::Mitigate {
                kind: MitigationKind::Reboot,
                node
            }
        );

        // Step 3: reboot completes -> verify scan.
        let mut obs = quiet_observation(&topo);
        obs.nodes[0].mitigation = Some(MitigationKind::Reboot);
        let actions = policy.decide(&obs, &topo, &mut rng);
        assert!(matches!(actions[0], DefenderAction::Investigate { .. }));

        // Step 4: scan detects again -> escalate to password reset.
        let mut obs = quiet_observation(&topo);
        obs.nodes[0].investigation = Some((InvestigationKind::AdvancedScan, true));
        let actions = policy.decide(&obs, &topo, &mut rng);
        assert_eq!(
            actions[0],
            DefenderAction::Mitigate {
                kind: MitigationKind::ResetPassword,
                node
            }
        );

        // Step 5: mitigation done, clean scan closes the COA.
        let mut obs = quiet_observation(&topo);
        obs.nodes[0].mitigation = Some(MitigationKind::ResetPassword);
        policy.decide(&obs, &topo, &mut rng);
        let mut obs = quiet_observation(&topo);
        obs.nodes[0].investigation = Some((InvestigationKind::AdvancedScan, false));
        policy.decide(&obs, &topo, &mut rng);
        // Quiet hours produce no actions once the COA is closed.
        let actions = policy.decide(&quiet_observation(&topo), &topo, &mut rng);
        assert_eq!(actions, vec![DefenderAction::NoAction]);
    }

    #[test]
    fn third_escalation_is_a_reimage() {
        let node = NodeId::from_index(2);
        assert_eq!(
            PlaybookPolicy::mitigation_for_escalation(2, node),
            DefenderAction::Mitigate {
                kind: MitigationKind::ReimageNode,
                node
            }
        );
        assert_eq!(
            PlaybookPolicy::mitigation_for_escalation(7, node),
            DefenderAction::Mitigate {
                kind: MitigationKind::ReimageNode,
                node
            }
        );
    }

    #[test]
    fn severity_three_alerts_get_human_analysis() {
        let node = NodeId::from_index(1);
        assert_eq!(
            PlaybookPolicy::scan_for_severity(3, node),
            DefenderAction::Investigate {
                kind: InvestigationKind::HumanAnalysis,
                node
            }
        );
    }

    #[test]
    fn offline_plcs_are_repaired() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = PlaybookPolicy::new();
        policy.reset(&topo);
        let mut rng = StdRng::seed_from_u64(0);
        let mut obs = quiet_observation(&topo);
        obs.plc_status[1] = PlcStatus::Destroyed;
        let actions = policy.decide(&obs, &topo, &mut rng);
        assert!(actions.contains(&DefenderAction::RecoverPlc {
            kind: PlcRecoveryKind::ReplacePlc,
            plc: PlcId::from_index(1)
        }));
    }

    #[test]
    fn quiet_network_means_no_action() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = PlaybookPolicy::new();
        policy.reset(&topo);
        let mut rng = StdRng::seed_from_u64(0);
        let actions = policy.decide(&quiet_observation(&topo), &topo, &mut rng);
        assert_eq!(actions, vec![DefenderAction::NoAction]);
        assert_eq!(policy.name(), "Playbook");
    }
}
