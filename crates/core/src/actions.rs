//! The flat defender action space used by the Q-learning agent.
//!
//! The paper's action-value network outputs one value per (action, target)
//! pair plus a no-action value; for the full network of Fig. 2 this is a few
//! hundred outputs (Table 7 lists 329). This module enumerates the pairs and
//! maps between flat indices and [`DefenderAction`]s.

use ics_net::{NodeId, PlcId, Topology};
use ics_sim::orchestrator::{DefenderAction, InvestigationKind, MitigationKind, PlcRecoveryKind};
use serde::{Deserialize, Serialize};

/// Number of distinct per-node action kinds (3 investigations + 4 mitigations).
pub const ACTIONS_PER_NODE: usize = 7;
/// Number of distinct per-PLC action kinds.
pub const ACTIONS_PER_PLC: usize = 2;

/// The enumerated defender action space for a fixed topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    node_count: usize,
    plc_count: usize,
}

impl ActionSpace {
    /// Builds the action space for a topology.
    pub fn new(topology: &Topology) -> Self {
        Self {
            node_count: topology.node_count(),
            plc_count: topology.plc_count(),
        }
    }

    /// Builds the action space from raw counts (useful in tests).
    pub fn from_counts(node_count: usize, plc_count: usize) -> Self {
        Self {
            node_count,
            plc_count,
        }
    }

    /// Number of nodes covered by the action space.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of PLCs covered by the action space.
    pub fn plc_count(&self) -> usize {
        self.plc_count
    }

    /// Total number of flat actions: 1 no-action + 7 per node + 2 per PLC.
    pub fn len(&self) -> usize {
        1 + ACTIONS_PER_NODE * self.node_count + ACTIONS_PER_PLC * self.plc_count
    }

    /// The action space is never empty (no-action always exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the no-action entry (always zero).
    pub fn no_action_index(&self) -> usize {
        0
    }

    /// Decodes a flat index into a concrete defender action.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn decode(&self, index: usize) -> DefenderAction {
        assert!(index < self.len(), "action index {index} out of range");
        if index == 0 {
            return DefenderAction::NoAction;
        }
        let index = index - 1;
        let node_block = ACTIONS_PER_NODE * self.node_count;
        if index < node_block {
            let node = NodeId::from_index(index / ACTIONS_PER_NODE);
            return match index % ACTIONS_PER_NODE {
                0 => DefenderAction::Investigate {
                    kind: InvestigationKind::SimpleScan,
                    node,
                },
                1 => DefenderAction::Investigate {
                    kind: InvestigationKind::AdvancedScan,
                    node,
                },
                2 => DefenderAction::Investigate {
                    kind: InvestigationKind::HumanAnalysis,
                    node,
                },
                3 => DefenderAction::Mitigate {
                    kind: MitigationKind::Reboot,
                    node,
                },
                4 => DefenderAction::Mitigate {
                    kind: MitigationKind::ResetPassword,
                    node,
                },
                5 => DefenderAction::Mitigate {
                    kind: MitigationKind::ReimageNode,
                    node,
                },
                _ => DefenderAction::Mitigate {
                    kind: MitigationKind::Quarantine,
                    node,
                },
            };
        }
        let index = index - node_block;
        let plc = PlcId::from_index(index / ACTIONS_PER_PLC);
        match index % ACTIONS_PER_PLC {
            0 => DefenderAction::RecoverPlc {
                kind: PlcRecoveryKind::ResetPlc,
                plc,
            },
            _ => DefenderAction::RecoverPlc {
                kind: PlcRecoveryKind::ReplacePlc,
                plc,
            },
        }
    }

    /// Encodes a defender action into its flat index.
    pub fn encode(&self, action: &DefenderAction) -> usize {
        match action {
            DefenderAction::NoAction => 0,
            DefenderAction::Investigate { kind, node } => {
                let offset = match kind {
                    InvestigationKind::SimpleScan => 0,
                    InvestigationKind::AdvancedScan => 1,
                    InvestigationKind::HumanAnalysis => 2,
                };
                1 + node.index() * ACTIONS_PER_NODE + offset
            }
            DefenderAction::Mitigate { kind, node } => {
                let offset = match kind {
                    MitigationKind::Reboot => 3,
                    MitigationKind::ResetPassword => 4,
                    MitigationKind::ReimageNode => 5,
                    MitigationKind::Quarantine => 6,
                };
                1 + node.index() * ACTIONS_PER_NODE + offset
            }
            DefenderAction::RecoverPlc { kind, plc } => {
                let offset = match kind {
                    PlcRecoveryKind::ResetPlc => 0,
                    PlcRecoveryKind::ReplacePlc => 1,
                };
                1 + ACTIONS_PER_NODE * self.node_count + plc.index() * ACTIONS_PER_PLC + offset
            }
        }
    }

    /// Iterates over every flat index together with its decoded action.
    pub fn iter(&self) -> impl Iterator<Item = (usize, DefenderAction)> + '_ {
        (0..self.len()).map(move |i| (i, self.decode(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ics_net::TopologySpec;

    #[test]
    fn full_topology_action_count_matches_paper_scale() {
        let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
        let space = ActionSpace::new(&topo);
        // 1 + 7*33 + 2*50 = 332, the same order as the paper's 329 outputs.
        assert_eq!(space.len(), 332);
        assert_eq!(space.node_count(), 33);
        assert_eq!(space.plc_count(), 50);
        assert!(!space.is_empty());
    }

    #[test]
    fn encode_decode_round_trips_every_action() {
        let space = ActionSpace::from_counts(5, 3);
        for (index, action) in space.iter() {
            assert_eq!(
                space.encode(&action),
                index,
                "round trip failed for {action}"
            );
        }
        assert_eq!(
            space.decode(space.no_action_index()),
            DefenderAction::NoAction
        );
    }

    #[test]
    fn decode_covers_all_kinds() {
        let space = ActionSpace::from_counts(2, 2);
        let mut investigations = 0;
        let mut mitigations = 0;
        let mut plc_actions = 0;
        for (_, action) in space.iter() {
            match action {
                DefenderAction::Investigate { .. } => investigations += 1,
                DefenderAction::Mitigate { .. } => mitigations += 1,
                DefenderAction::RecoverPlc { .. } => plc_actions += 1,
                DefenderAction::NoAction => {}
            }
        }
        assert_eq!(investigations, 6);
        assert_eq!(mitigations, 8);
        assert_eq!(plc_actions, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_checks_bounds() {
        let space = ActionSpace::from_counts(1, 1);
        let _ = space.decode(space.len());
    }
}
