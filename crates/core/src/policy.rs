//! The defender policy interface shared by the ACSO agent and every baseline.

use crate::rollout::BatchPolicy;
use ics_net::Topology;
use ics_sim::{DefenderAction, Observation};
use rand::rngs::StdRng;

/// A defender decision policy.
///
/// Policies are called once per simulated hour with the latest observation
/// and may return any number of actions to submit this step (the learned
/// agent returns at most one; the playbook may run several courses of action
/// in parallel).
pub trait DefenderPolicy: Send {
    /// A short name used in result tables ("ACSO", "Playbook", ...).
    fn name(&self) -> &str;

    /// Resets internal state at the start of an episode.
    fn reset(&mut self, topology: &Topology);

    /// Chooses the actions to submit for this hour.
    fn decide(
        &mut self,
        observation: &Observation,
        topology: &Topology,
        rng: &mut StdRng,
    ) -> Vec<DefenderAction>;

    /// Upgrades a policy of this kind into a [`BatchPolicy`] managing
    /// `lanes` lockstep episode lanes, when the policy supports batched
    /// inference. `self` acts as the prototype (the returned policy must
    /// decide exactly like `lanes` independent copies of it); the default
    /// `None` makes the batched engine fall back to per-lane serial
    /// instances ([`crate::rollout::PerLanePolicies`]).
    fn make_batch_policy(&self, lanes: usize) -> Option<Box<dyn BatchPolicy>> {
        let _ = lanes;
        None
    }
}

/// A defender that never acts. Useful as a lower bound on IT cost and an
/// upper bound on attack success.
#[derive(Debug, Default, Clone)]
pub struct NullPolicy;

impl NullPolicy {
    /// Creates the do-nothing policy.
    pub fn new() -> Self {
        Self
    }
}

impl DefenderPolicy for NullPolicy {
    fn name(&self) -> &str {
        "No defense"
    }

    fn reset(&mut self, _topology: &Topology) {}

    fn decide(
        &mut self,
        _observation: &Observation,
        _topology: &Topology,
        _rng: &mut StdRng,
    ) -> Vec<DefenderAction> {
        vec![DefenderAction::NoAction]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ics_net::TopologySpec;
    use rand::SeedableRng;

    #[test]
    fn null_policy_never_acts() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let mut policy = NullPolicy::new();
        policy.reset(&topo);
        assert_eq!(policy.name(), "No defense");
        let obs = Observation {
            time: 0,
            nodes: Vec::new(),
            plc_status: Vec::new(),
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(0);
        let actions = policy.decide(&obs, &topo, &mut rng);
        assert_eq!(actions, vec![DefenderAction::NoAction]);
    }

    #[test]
    fn policy_trait_is_object_safe() {
        let _: Box<dyn DefenderPolicy> = Box::new(NullPolicy::new());
    }
}
