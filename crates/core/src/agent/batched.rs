//! The agent's lane policy for the lockstep batched rollout engine.
//!
//! One Q-network serves every lane: each lockstep round the lanes' belief
//! filters are updated and encoded individually (belief state is
//! per-episode), then a single [`QNetwork::q_values_batch`] call answers all
//! lanes at once, and each lane takes its greedy action. Because batched
//! inference is bit-identical per state to solo inference and greedy
//! selection consumes no randomness, every lane decides exactly as a serial
//! [`crate::AcsoAgent`] evaluation episode would.

use crate::actions::ActionSpace;
use crate::agent::QNetwork;
use crate::features::{EncodeScratch, NodeFeatureEncoder, StateFeatures};
use crate::rollout::{BatchPolicy, LaneDecision};
use dbn::DbnFilter;
use ics_net::Topology;

/// Per-lane episode state: the belief filter, a reusable feature buffer, and
/// the step-chain scratch that lets consecutive hours rewrite only active
/// node rows of that buffer.
#[derive(Clone)]
struct Lane {
    filter: DbnFilter,
    features: StateFeatures,
    scratch: EncodeScratch,
}

/// The trained agent behind the [`BatchPolicy`] interface: shared network,
/// per-lane belief state.
pub struct BatchedAgentPolicy<N: QNetwork> {
    network: N,
    action_space: ActionSpace,
    encoder: NodeFeatureEncoder,
    lanes: Vec<Lane>,
}

impl<N: QNetwork> BatchedAgentPolicy<N> {
    /// Builds a policy for `lanes` lockstep lanes. `filter` is the agent's
    /// belief filter used as the per-lane template (each lane's copy is
    /// reset at its episode start).
    pub(crate) fn new(
        network: N,
        action_space: ActionSpace,
        encoder: NodeFeatureEncoder,
        filter: DbnFilter,
        lanes: usize,
    ) -> Self {
        let lane = Lane {
            filter,
            features: StateFeatures::empty(),
            scratch: EncodeScratch::new(),
        };
        Self {
            network,
            action_space,
            encoder,
            lanes: vec![lane; lanes.max(1)],
        }
    }
}

impl<N: QNetwork> BatchPolicy for BatchedAgentPolicy<N> {
    fn name(&self) -> &str {
        "ACSO"
    }

    fn reset_lane(&mut self, lane: usize, _topology: &Topology) {
        self.lanes[lane].filter.reset();
        self.lanes[lane].scratch.invalidate();
    }

    fn decide_lanes(&mut self, requests: &mut [LaneDecision<'_>]) {
        // Per-lane belief update and encoding (stateful, must stay per
        // episode), into each lane's reusable buffer.
        for r in requests.iter_mut() {
            let lane = &mut self.lanes[r.lane];
            lane.filter.update(r.observation);
            self.encoder.encode_active_into(
                r.observation,
                &lane.filter,
                &mut lane.scratch,
                &mut lane.features,
            );
        }
        // One batched forward answers every live lane.
        let states: Vec<&StateFeatures> = requests
            .iter()
            .map(|r| &self.lanes[r.lane].features)
            .collect();
        let q_values = self.network.q_values_batch(&states);
        for (r, q) in requests.iter_mut().zip(&q_values) {
            let action = rl::policy::greedy(q);
            r.actions.clear();
            r.actions.push(self.action_space.decode(action));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::policy::DefenderPolicy;
    use crate::rollout::{rollout_serial, RolloutPlan, SyncBatchEngine};
    use crate::train::{train_attention_acso, TrainConfig};
    use ics_sim::SimConfig;

    #[test]
    fn batched_agent_decides_exactly_like_the_serial_agent() {
        let trained = train_attention_acso(&TrainConfig::smoke(1).with_seed(17));
        let mut agent = trained.agent;
        agent.set_explore(false);

        let plan = |threads| RolloutPlan {
            sim: SimConfig::tiny().with_max_time(80),
            episodes: 6,
            seed: 3,
            threads,
        };
        let serial = rollout_serial(&mut agent, &plan(1));
        for lanes in [1usize, 3, 8] {
            let engine = SyncBatchEngine::new(lanes);
            let batched = engine.rollout(&plan(2), &|| {
                Box::new(agent.eval_clone()) as Box<dyn DefenderPolicy>
            });
            assert_eq!(serial, batched, "lanes={lanes} diverged from serial");
        }
    }

    #[test]
    fn the_agent_upgrades_itself_to_a_batch_policy() {
        let trained = train_attention_acso(&TrainConfig::smoke(1).with_seed(19));
        let policy = trained
            .agent
            .make_batch_policy(4)
            .expect("the agent supports batched inference");
        assert_eq!(policy.name(), "ACSO");
    }
}
