//! The ACSO agent: a Q-network, the DBN filter, and the augmented DQN
//! training machinery, behind both a training interface and the common
//! [`DefenderPolicy`] evaluation interface.

use crate::actions::ActionSpace;
use crate::agent::QNetwork;
use crate::features::{EncodeScratch, NodeFeatureEncoder, StateFeatures};
use crate::policy::DefenderPolicy;
use dbn::{DbnFilter, DbnModel};
use ics_net::Topology;
use ics_sim::{DefenderAction, Observation};
use neural::optim::Adam;
use neural::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{epsilon_greedy, DqnConfig, DqnTrainer, FeatureId, Transition};

/// Environment variable selecting the gradient-update implementation:
/// unset or anything but `0`/`off`/`serial` uses the batched update (the
/// default); `ACSO_TRAIN_BATCH=0` forces the per-sample serial loop the
/// batched path is pinned bit-identical to.
pub const TRAIN_BATCH_ENV_VAR: &str = "ACSO_TRAIN_BATCH";

/// How [`AcsoAgent::maybe_train`] runs the double-DQN gradient update.
///
/// The two modes produce **bit-identical** training (weights, losses, TD
/// errors, transcripts — pinned by `tests/train_determinism.rs`); `Serial`
/// exists as the reference implementation and for benchmarking the batched
/// path's speedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// One stacked forward and one stacked backward for the whole minibatch.
    #[default]
    Batched,
    /// The pre-batching reference: forward/backward one replay sample at a
    /// time.
    Serial,
}

impl UpdateMode {
    /// Reads [`TRAIN_BATCH_ENV_VAR`] (used at agent construction).
    pub fn from_env() -> Self {
        match std::env::var(TRAIN_BATCH_ENV_VAR) {
            Ok(v)
                if v == "0"
                    || v.eq_ignore_ascii_case("off")
                    || v.eq_ignore_ascii_case("serial") =>
            {
                UpdateMode::Serial
            }
            _ => UpdateMode::Batched,
        }
    }
}

/// Configuration of the agent's learner.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentConfig {
    /// Augmented-DQN hyper-parameters (§4.2).
    pub dqn: DqnConfig,
    /// Adam learning rate (the paper uses 1e-4).
    pub learning_rate: f32,
    /// Seed for the agent's exploration RNG.
    pub seed: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            dqn: DqnConfig::paper(),
            learning_rate: 1e-4,
            seed: 0,
        }
    }
}

impl AgentConfig {
    /// A configuration sized for CPU smoke-training runs.
    pub fn smoke() -> Self {
        Self {
            dqn: DqnConfig::smoke(),
            learning_rate: 3e-4,
            seed: 0,
        }
    }
}

/// The ACSO defender agent.
///
/// `Clone` snapshots the whole agent — networks, filter, replay contents —
/// which is how the parallel rollout engine gives every evaluation worker
/// its own instance of a trained agent.
///
/// # Example
///
/// Assemble an (untrained) agent from its three ingredients — a learned DBN
/// model, a Q-network, a configuration — and roll out one greedy episode:
///
/// ```
/// use acso_core::agent::{AcsoAgent, AgentConfig, AttentionQNet};
/// use acso_core::rollout::{rollout_serial, RolloutPlan};
/// use acso_core::ActionSpace;
/// use dbn::learn::{learn_model, LearnConfig};
/// use ics_sim::{IcsEnvironment, SimConfig};
///
/// let sim = SimConfig::tiny().with_max_time(30);
/// let model = learn_model(&LearnConfig { episodes: 1, seed: 0, sim: sim.clone() });
/// let env = IcsEnvironment::new(sim.clone());
/// let network = AttentionQNet::new(ActionSpace::new(env.topology()), 0);
/// let mut agent = AcsoAgent::new(env.topology(), model, network, AgentConfig::smoke());
/// agent.set_explore(false); // greedy evaluation mode
///
/// let metrics = rollout_serial(&mut agent, &RolloutPlan::new(sim, 1, 0).with_threads(1));
/// assert_eq!(metrics.len(), 1);
/// ```
#[derive(Clone)]
pub struct AcsoAgent<N: QNetwork + Clone> {
    online: N,
    target: N,
    trainer: DqnTrainer<StateFeatures>,
    optimizer: Adam,
    action_space: ActionSpace,
    encoder: NodeFeatureEncoder,
    filter: DbnFilter,
    rng: StdRng,
    /// Whether action selection explores (training) or is purely greedy
    /// (evaluation).
    explore: bool,
    losses: Vec<f32>,
    /// Reusable feature buffer for the greedy evaluation path, where the
    /// encoding is dead as soon as the action is chosen.
    eval_features: StateFeatures,
    /// Step-chain bookkeeping for `eval_features`, letting the greedy path
    /// rewrite only active rows between consecutive hours of one episode.
    eval_scratch: EncodeScratch,
    /// Reusable flat-gradient buffer for the serial update path.
    grad_buf: Vec<f32>,
    /// Reusable `[batch, action-space]` gradient matrix for the batched
    /// update path.
    grad_batch: Matrix,
    /// Which gradient-update implementation [`AcsoAgent::maybe_train`] runs.
    update_mode: UpdateMode,
}

impl<N: QNetwork + Clone> AcsoAgent<N> {
    /// Creates an agent for a topology with the given Q-network and learned
    /// DBN model.
    pub fn new(topology: &Topology, dbn_model: DbnModel, network: N, config: AgentConfig) -> Self {
        let action_space = ActionSpace::new(topology);
        let encoder = NodeFeatureEncoder::new(topology);
        let filter = DbnFilter::new(dbn_model, topology.node_count());
        let target = network.clone();
        Self {
            online: network,
            target,
            trainer: DqnTrainer::new(config.dqn),
            optimizer: Adam::new(config.learning_rate),
            action_space,
            encoder,
            filter,
            rng: StdRng::seed_from_u64(config.seed),
            explore: true,
            losses: Vec::new(),
            eval_features: StateFeatures::empty(),
            eval_scratch: EncodeScratch::new(),
            grad_buf: Vec::new(),
            grad_batch: Matrix::zeros(0, 0),
            update_mode: UpdateMode::from_env(),
        }
    }

    /// The flat action space the agent selects from.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    /// Mutable access to the online Q-network (weight serialization,
    /// diagnostics).
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.online
    }

    /// A lightweight copy for evaluation workers: networks, belief filter
    /// and encoder are cloned, but the replay buffer, n-step window and
    /// optimizer state are reset — greedy evaluation never reads them, and
    /// a full `Clone` would otherwise copy the entire training history per
    /// worker. The copy starts with exploration disabled.
    pub fn eval_clone(&self) -> Self {
        Self {
            online: self.online.clone(),
            target: self.target.clone(),
            trainer: DqnTrainer::new(*self.trainer.config()),
            optimizer: Adam::new(self.optimizer.learning_rate()),
            action_space: self.action_space.clone(),
            encoder: self.encoder.clone(),
            filter: self.filter.clone(),
            rng: self.rng.clone(),
            explore: false,
            losses: Vec::new(),
            eval_features: StateFeatures::empty(),
            eval_scratch: EncodeScratch::new(),
            grad_buf: Vec::new(),
            grad_batch: Matrix::zeros(0, 0),
            update_mode: self.update_mode,
        }
    }

    /// Selects the gradient-update implementation (both modes are pinned
    /// bit-identical; `Serial` is the reference/benchmark path).
    pub fn set_update_mode(&mut self, mode: UpdateMode) {
        self.update_mode = mode;
    }

    /// The gradient-update implementation in use.
    pub fn update_mode(&self) -> UpdateMode {
        self.update_mode
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.trainer.epsilon()
    }

    /// Mean training loss over the most recent updates (diagnostics).
    pub fn recent_loss(&self) -> f32 {
        if self.losses.is_empty() {
            0.0
        } else {
            self.losses.iter().sum::<f32>() / self.losses.len() as f32
        }
    }

    /// Switches between exploring (training) and greedy (evaluation) action
    /// selection.
    pub fn set_explore(&mut self, explore: bool) {
        self.explore = explore;
    }

    /// Resets per-episode state (the belief filter). Call at every episode
    /// start, for training and evaluation alike.
    pub fn begin_episode(&mut self) {
        self.filter.reset();
        self.eval_scratch.invalidate();
    }

    /// Finishes a training episode: decays ε and flushes the n-step window.
    pub fn end_episode(&mut self) {
        self.trainer.end_episode();
        self.losses.clear();
    }

    /// Updates the belief filter with an observation, encodes the state into
    /// the trainer's feature arena, and selects an action index (ε-greedy
    /// when exploring, greedy otherwise).
    ///
    /// The returned [`FeatureId`] is the arena handle for this decision
    /// point: the training loop passes it to
    /// [`AcsoAgent::store_transition`] twice — as the next state of one
    /// transition and the current state of the following one — so each
    /// encoded state is stored exactly once. **Every id must reach
    /// `store_transition`** (ending the episode right after the final call
    /// is fine — that id was already stored as the last transition's next
    /// state): an id that is selected but never stored keeps its arena slot
    /// occupied for the life of the trainer. Loops that only need actions,
    /// not learning, should use the greedy [`DefenderPolicy`] interface
    /// instead, which touches no arena.
    ///
    /// Inference runs through [`QNetwork::q_values_batch`] as a batch of one
    /// — bit-identical to the cached single-state forward, but (like every
    /// inference call since the batch-first refactor) it leaves the training
    /// cache untouched.
    pub fn select_action(&mut self, observation: &Observation) -> (usize, FeatureId) {
        self.filter.update(observation);
        let features = self.encoder.encode(observation, &self.filter);
        let q = self
            .online
            .q_values_batch(&[&features])
            .pop()
            .expect("a batch of one state yields one Q-vector");
        let id = self.trainer.intern(features);
        let epsilon = if self.explore {
            self.trainer.epsilon()
        } else {
            0.0
        };
        let action = epsilon_greedy(&q, epsilon, &mut self.rng);
        (action, id)
    }

    /// Greedy action selection for evaluation: encodes into a reusable
    /// buffer (no per-step feature allocation, and between consecutive hours
    /// only active node rows are rewritten) and consumes no randomness, so
    /// cloned agents decide identically regardless of call history.
    fn act_greedy(&mut self, observation: &Observation) -> usize {
        self.filter.update(observation);
        self.encoder.encode_active_into(
            observation,
            &self.filter,
            &mut self.eval_scratch,
            &mut self.eval_features,
        );
        let q = self
            .online
            .q_values_batch(&[&self.eval_features])
            .pop()
            .expect("a batch of one state yields one Q-vector");
        rl::policy::greedy(&q)
    }

    /// Records a transition for learning, by feature-arena ids (from
    /// [`AcsoAgent::select_action`]) — no feature set is copied or cloned on
    /// this path.
    pub fn store_transition(
        &mut self,
        state: FeatureId,
        action: usize,
        reward: f64,
        next_state: FeatureId,
        done: bool,
    ) {
        self.trainer.observe(Transition {
            state,
            action,
            reward,
            next_state,
            done,
        });
    }

    /// Number of live feature sets in the replay arena (memory
    /// diagnostics; see [`DqnTrainer::arena_live`]).
    pub fn replay_arena_live(&self) -> usize {
        self.trainer.arena_live()
    }

    /// Number of n-step transitions in the replay ring.
    pub fn replay_buffered(&self) -> usize {
        self.trainer.buffered()
    }

    /// Runs one gradient update if the trainer says it is time. Returns the
    /// batch loss when an update happened.
    ///
    /// The default ([`UpdateMode::Batched`]) update is batch-first end to
    /// end: the double-DQN bootstrap, the prediction forward *and* the
    /// backward pass each run as one stacked pass over the whole minibatch
    /// (gradients summed per parameter before a single optimizer step),
    /// with per-sample TD errors still extracted for the priority updates.
    /// Minibatch states are gathered from the replay feature arena by
    /// index — nothing is cloned on this path. [`UpdateMode::Serial`] keeps
    /// the per-sample reference loop; both produce bit-identical training.
    pub fn maybe_train(&mut self) -> Option<f32> {
        if !self.trainer.should_update() {
            return None;
        }
        let picks = self.trainer.sample_batch_indices(&mut self.rng);
        if picks.is_empty() {
            return None;
        }
        let loss = match self.update_mode {
            UpdateMode::Batched => self.update_batched(&picks),
            UpdateMode::Serial => self.update_serial(&picks),
        };
        self.losses.push(loss);
        Some(loss)
    }

    /// Double-DQN bootstrap values for the non-terminal samples of a batch:
    /// the online network chooses the bootstrap action, the target network
    /// evaluates it. One batched (inference-only) forward per network
    /// covers the whole minibatch and leaves the training cache untouched.
    fn bootstrap_values(&mut self, picks: &[(usize, f64)]) -> Vec<f64> {
        let boot_states: Vec<&StateFeatures> = picks
            .iter()
            .filter(|(index, _)| !self.trainer.transition(*index).done)
            .map(|(index, _)| {
                self.trainer
                    .features(self.trainer.transition(*index).final_state)
            })
            .collect();
        let online_next = self.online.q_values_batch(&boot_states);
        let target_next = self.target.q_values_batch(&boot_states);
        online_next
            .iter()
            .zip(&target_next)
            .map(|(online_q, target_q)| f64::from(target_q[rl::policy::greedy(online_q)]))
            .collect()
    }

    /// The batched update: one stacked training forward, one gradient row
    /// per sample, one stacked backward, one optimizer step.
    fn update_batched(&mut self, picks: &[(usize, f64)]) -> f32 {
        let gamma = self.trainer.config().gamma;
        let batch_len = picks.len();
        self.online.zero_grad();
        let bootstraps = self.bootstrap_values(picks);
        let mut bootstraps = bootstraps.into_iter();

        // One stacked forward over the whole minibatch, gathered from the
        // arena; the per-sample predictions are bit-identical to solo cached
        // forwards, so the TD errors (and the priorities they feed) match
        // the serial path exactly.
        let states: Vec<&StateFeatures> = picks
            .iter()
            .map(|(index, _)| self.trainer.features(self.trainer.transition(*index).state))
            .collect();
        let predictions = self.online.q_values_batch_train(&states);

        let action_len = self.action_space.len();
        if self.grad_batch.shape() != (batch_len, action_len) {
            self.grad_batch = Matrix::zeros(batch_len, action_len);
        } else {
            self.grad_batch.fill(0.0);
        }
        let mut errors = Vec::with_capacity(batch_len);
        let mut loss_sum = 0.0f32;
        for (row, (index, weight)) in picks.iter().enumerate() {
            let t = self.trainer.transition(*index);
            let bootstrap = if t.done {
                0.0
            } else {
                bootstraps.next().expect("one bootstrap per live sample")
            };
            let td_target = t.return_n + t.bootstrap_discount(gamma) * bootstrap;
            let prediction = f64::from(predictions[row][t.action]);
            let td_error = prediction - td_target;

            // Huber gradient on the selected action only, importance-weighted.
            let delta = 1.0f64;
            let grad_value = td_error.clamp(-delta, delta) * weight / batch_len as f64;
            self.grad_batch.row_mut(row)[t.action] = grad_value as f32;
            loss_sum += huber_loss(td_error) as f32;
            errors.push((*index, td_error.abs()));
        }
        self.online.backward_batch(&self.grad_batch);

        self.finish_update(&errors);
        loss_sum / batch_len as f32
    }

    /// The pre-batching reference update: forward/backward one sample at a
    /// time. Kept as the bit-identity baseline (`ACSO_TRAIN_BATCH=0`) and
    /// the benchmark comparison point.
    fn update_serial(&mut self, picks: &[(usize, f64)]) -> f32 {
        let gamma = self.trainer.config().gamma;
        let batch_len = picks.len();
        self.online.zero_grad();
        let bootstraps = self.bootstrap_values(picks);
        let mut bootstraps = bootstraps.into_iter();

        let mut errors = Vec::with_capacity(batch_len);
        let mut loss_sum = 0.0f32;
        for (index, weight) in picks {
            let t = self.trainer.transition(*index);
            let bootstrap = if t.done {
                0.0
            } else {
                bootstraps.next().expect("one bootstrap per live sample")
            };
            let td_target = t.return_n + t.bootstrap_discount(gamma) * bootstrap;

            let q = self.online.q_values(self.trainer.features(t.state));
            let prediction = f64::from(q[t.action]);
            let td_error = prediction - td_target;

            let delta = 1.0f64;
            let grad_value = td_error.clamp(-delta, delta) * weight / batch_len as f64;
            self.grad_buf.clear();
            self.grad_buf.resize(q.len(), 0.0);
            self.grad_buf[t.action] = grad_value as f32;
            self.online.backward(&self.grad_buf);

            loss_sum += huber_loss(td_error) as f32;
            errors.push((*index, td_error.abs()));
        }

        self.finish_update(&errors);
        loss_sum / batch_len as f32
    }

    /// Shared tail of both update modes: optimizer step, priority refresh,
    /// target-network sync.
    fn finish_update(&mut self, errors: &[(usize, f64)]) {
        self.optimizer.step(&mut self.online.params_mut());
        let sync = self.trainer.record_update(errors);
        if sync {
            self.target.copy_params_from(&mut self.online);
        }
    }

    /// Total environment steps the agent has observed.
    pub fn env_steps(&self) -> u64 {
        self.trainer.env_steps()
    }

    /// Total gradient updates performed.
    pub fn updates(&self) -> u64 {
        self.trainer.updates()
    }

    /// The training bookkeeping (checkpoint encoding and invariant sweeps).
    pub fn trainer(&self) -> &DqnTrainer<StateFeatures> {
        &self.trainer
    }

    /// The DBN belief filter (invariant sweeps: every node's belief must
    /// remain a probability distribution after each update).
    pub fn filter(&self) -> &DbnFilter {
        &self.filter
    }

    /// Mutable access to the training bookkeeping (checkpoint restore).
    pub(crate) fn trainer_mut(&mut self) -> &mut DqnTrainer<StateFeatures> {
        &mut self.trainer
    }

    /// Mutable access to the target Q-network (checkpoint encoding: the
    /// target lags the online network, so both sets of weights travel).
    pub(crate) fn target_mut(&mut self) -> &mut N {
        &mut self.target
    }

    /// The optimizer (checkpoint encoding).
    pub(crate) fn optimizer(&self) -> &Adam {
        &self.optimizer
    }

    /// Mutable access to the optimizer (checkpoint restore).
    pub(crate) fn optimizer_mut(&mut self) -> &mut Adam {
        &mut self.optimizer
    }

    /// The exploration RNG's exact stream position.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the exploration RNG to a saved stream position, so a resumed
    /// run draws the continuation of the interrupted stream rather than
    /// restarting it.
    pub(crate) fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

/// Huber loss (δ = 1) of one TD error.
fn huber_loss(td_error: f64) -> f64 {
    let delta = 1.0f64;
    if td_error.abs() <= delta {
        0.5 * td_error * td_error
    } else {
        delta * (td_error.abs() - 0.5 * delta)
    }
}

impl<N: QNetwork + Clone + 'static> DefenderPolicy for AcsoAgent<N> {
    fn name(&self) -> &str {
        "ACSO"
    }

    fn reset(&mut self, _topology: &Topology) {
        self.begin_episode();
    }

    fn decide(
        &mut self,
        observation: &Observation,
        _topology: &Topology,
        _rng: &mut StdRng,
    ) -> Vec<DefenderAction> {
        let action = self.act_greedy(observation);
        vec![self.action_space.decode(action)]
    }

    /// The agent's batched upgrade for the lockstep engine: one clone of the
    /// online network shared by all lanes, one belief filter per lane.
    /// Greedy like [`AcsoAgent::decide`] and bit-identical to it per lane
    /// (the [`QNetwork::q_values_batch`] contract), so batched rollouts
    /// reproduce serial transcripts exactly.
    fn make_batch_policy(&self, lanes: usize) -> Option<Box<dyn crate::rollout::BatchPolicy>> {
        Some(Box::new(crate::agent::BatchedAgentPolicy::new(
            self.online.clone(),
            self.action_space.clone(),
            self.encoder.clone(),
            self.filter.clone(),
            lanes,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AttentionQNet;
    use dbn::learn::{learn_model, LearnConfig};
    use ics_sim::{IcsEnvironment, SimConfig};

    fn make_agent(seed: u64) -> (IcsEnvironment, AcsoAgent<AttentionQNet>) {
        let sim = SimConfig::tiny().with_max_time(120).with_seed(seed);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed,
            sim: sim.clone(),
        });
        let env = IcsEnvironment::new(sim);
        let space = ActionSpace::new(env.topology());
        let net = AttentionQNet::new(space, seed);
        let config = AgentConfig {
            dqn: DqnConfig {
                warmup_transitions: 16,
                update_every: 8,
                batch_size: 8,
                n_step: 3,
                target_update_interval: 4,
                ..DqnConfig::smoke()
            },
            learning_rate: 1e-3,
            seed,
        };
        let agent = AcsoAgent::new(env.topology(), model, net, config);
        (env, agent)
    }

    #[test]
    fn agent_selects_valid_actions_and_trains() {
        let (mut env, mut agent) = make_agent(3);
        agent.begin_episode();
        let obs = env.reset();
        let (mut action, mut state) = agent.select_action(&obs);
        let mut trained = false;
        for _ in 0..80 {
            assert!(action < agent.action_space().len());
            let step = env.step(&[agent.action_space().decode(action)]);
            let (next_action, next_state) = agent.select_action(&step.observation);
            agent.store_transition(
                state,
                action,
                step.reward + step.shaping_reward,
                next_state,
                step.done,
            );
            if agent.maybe_train().is_some() {
                trained = true;
            }
            action = next_action;
            state = next_state;
            if step.done {
                break;
            }
        }
        agent.end_episode();
        assert!(trained, "agent should perform at least one gradient update");
        assert!(agent.env_steps() > 0);
        assert!(agent.updates() > 0);
        assert!(agent.recent_loss() >= 0.0 || !agent.recent_loss().is_nan());
        // The arena holds about one feature set per distinct decision point
        // — half the two-per-transition pre-arena layout.
        assert!(agent.replay_buffered() > 0);
        assert!(agent.replay_arena_live() <= agent.replay_buffered() + 2);
    }

    /// The two update modes must produce bit-identical training: same
    /// weights, same losses, same exploration stream.
    #[test]
    fn batched_and_serial_updates_are_bit_identical() {
        let run = |mode: UpdateMode| {
            let (mut env, mut agent) = make_agent(13);
            agent.set_update_mode(mode);
            agent.begin_episode();
            let obs = env.reset();
            let (mut action, mut state) = agent.select_action(&obs);
            let mut losses = Vec::new();
            for _ in 0..64 {
                let step = env.step(&[agent.action_space().decode(action)]);
                let (next_action, next_state) = agent.select_action(&step.observation);
                agent.store_transition(
                    state,
                    action,
                    step.reward + step.shaping_reward,
                    next_state,
                    step.done,
                );
                if let Some(loss) = agent.maybe_train() {
                    losses.push(loss);
                }
                action = next_action;
                state = next_state;
                if step.done {
                    break;
                }
            }
            agent.end_episode();
            let weights: Vec<Vec<f32>> = agent
                .network_mut()
                .params_mut()
                .iter()
                .map(|p| p.value.data().to_vec())
                .collect();
            (losses, weights)
        };
        let (batched_losses, batched_weights) = run(UpdateMode::Batched);
        let (serial_losses, serial_weights) = run(UpdateMode::Serial);
        assert!(!batched_losses.is_empty(), "no update ran");
        assert_eq!(batched_losses, serial_losses, "losses diverged");
        assert_eq!(batched_weights, serial_weights, "weights diverged");
    }

    #[test]
    fn epsilon_decays_across_episodes() {
        let (_, mut agent) = make_agent(5);
        let before = agent.epsilon();
        agent.end_episode();
        agent.end_episode();
        assert!(agent.epsilon() < before);
    }

    #[test]
    fn defender_policy_interface_is_greedy_and_valid() {
        let (mut env, mut agent) = make_agent(7);
        agent.set_explore(false);
        let obs = env.reset();
        let topo = env.topology().clone();
        let mut rng = StdRng::seed_from_u64(0);
        agent.reset(&topo);
        let actions = agent.decide(&obs, &topo, &mut rng);
        assert_eq!(actions.len(), 1);
        assert_eq!(agent.name(), "ACSO");
    }
}
