//! The ACSO agent: Q-networks and the DQN agent that wraps them.

mod acso_agent;
mod attention_net;
mod baseline_net;
pub mod io;

pub use acso_agent::{AcsoAgent, AgentConfig};
pub use attention_net::AttentionQNet;
pub use baseline_net::BaselineConvQNet;
pub use io::{load_weights, save_weights};

use crate::features::StateFeatures;
use neural::Param;

/// A Q-value network over the defender action space.
///
/// Implementations map a [`StateFeatures`] encoding to one value per flat
/// action (see [`crate::ActionSpace`]) and support backpropagation of a
/// gradient with respect to those values.
pub trait QNetwork: Send {
    /// Q-values for every flat action, in action-space order. Caches the
    /// forward pass for a subsequent [`QNetwork::backward`].
    fn q_values(&mut self, features: &StateFeatures) -> Vec<f32>;

    /// Q-values for a batch of states, used for passes that do not need a
    /// backward (e.g. the double-DQN bootstrap over a replay minibatch).
    ///
    /// The default runs [`QNetwork::q_values`] per state; networks whose
    /// forward is row-wise (the flattened baseline) override this to push
    /// the whole batch through one matmul. Clobbers the forward cache — do
    /// not call between a cached forward and its backward.
    fn q_values_batch(&mut self, features: &[&StateFeatures]) -> Vec<Vec<f32>> {
        features.iter().map(|f| self.q_values(f)).collect()
    }

    /// Backpropagates a gradient with respect to the Q-values returned by the
    /// most recent [`QNetwork::q_values`] call, accumulating parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`QNetwork::q_values`] or
    /// with a gradient of the wrong length.
    fn backward(&mut self, grad_q: &[f32]);

    /// Mutable access to all trainable parameters (stable ordering).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Copies parameter values from another network of the same shape
    /// (used to refresh the target network).
    fn copy_params_from(&mut self, source: &mut dyn QNetwork) {
        let source_values: Vec<neural::Matrix> = source
            .params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect();
        for (dst, src) in self.params_mut().into_iter().zip(source_values) {
            dst.value = src;
        }
    }
}
