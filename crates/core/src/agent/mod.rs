//! The ACSO agent: Q-networks and the DQN agent that wraps them.

mod acso_agent;
mod attention_net;
mod baseline_net;
mod batched;
pub mod io;

pub use acso_agent::{AcsoAgent, AgentConfig, UpdateMode, TRAIN_BATCH_ENV_VAR};
pub use attention_net::AttentionQNet;
pub use baseline_net::BaselineConvQNet;
pub use batched::BatchedAgentPolicy;
pub use io::{load_weights, save_weights};

use crate::features::StateFeatures;
use neural::{Matrix, Param};

/// A Q-value network over the defender action space.
///
/// Implementations map a [`StateFeatures`] encoding to one value per flat
/// action (see [`crate::ActionSpace`]) and support backpropagation of a
/// gradient with respect to those values.
///
/// The interface is **batch-first**: [`QNetwork::q_values_batch`] is the
/// required inference path (action selection, double-DQN bootstrap, the
/// lockstep rollout engine), and the single-state [`QNetwork::q_values`] is
/// by default the batch-of-1 special case. Networks that support training
/// override `q_values` with a forward that caches intermediates for
/// [`QNetwork::backward`].
pub trait QNetwork: Send {
    /// Q-values for a batch of states: one `Vec` per state, each covering
    /// every flat action in action-space order.
    ///
    /// Two contracts every implementation upholds (pinned by tests):
    ///
    /// * state `i`'s values are **bit-identical** to a solo
    ///   [`QNetwork::q_values`] call on state `i` — padding states into a
    ///   batch never changes any individual answer, which is what lets the
    ///   batched rollout engine promise transcripts identical to the serial
    ///   engine;
    /// * the call is **inference-only**: no backward cache is written or
    ///   clobbered, so it may run between a cached `q_values` forward and
    ///   its [`QNetwork::backward`].
    fn q_values_batch(&mut self, features: &[&StateFeatures]) -> Vec<Vec<f32>>;

    /// Q-values for every flat action of a single state, in action-space
    /// order. Trainable networks override this with a forward pass that
    /// caches intermediates for a subsequent [`QNetwork::backward`]; the
    /// default is the batch-of-1 special case of
    /// [`QNetwork::q_values_batch`] (inference-only, no backward cache).
    fn q_values(&mut self, features: &StateFeatures) -> Vec<f32> {
        self.q_values_batch(&[features])
            .pop()
            .expect("a batch of one state yields one Q-vector")
    }

    /// Backpropagates a gradient with respect to the Q-values returned by the
    /// most recent [`QNetwork::q_values`] call, accumulating parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`QNetwork::q_values`] or
    /// with a gradient of the wrong length.
    fn backward(&mut self, grad_q: &[f32]);

    /// The training-mode batched forward: Q-values for a whole minibatch in
    /// one stacked pass, caching batch-shaped intermediates for a subsequent
    /// [`QNetwork::backward_batch`].
    ///
    /// State `i`'s values are **bit-identical** to a solo
    /// [`QNetwork::q_values`] call on state `i` (the same contract as
    /// [`QNetwork::q_values_batch`]), but unlike the inference path this
    /// call *does* overwrite the training cache — it replaces a loop of
    /// cached solo forwards, not interleave with one.
    fn q_values_batch_train(&mut self, features: &[&StateFeatures]) -> Vec<Vec<f32>>;

    /// Backpropagates one gradient row per state of the most recent
    /// [`QNetwork::q_values_batch_train`] call (a `[batch, action-space]`
    /// matrix), accumulating parameter gradients summed over the minibatch.
    ///
    /// Gradient accumulation is bit-identical to running solo
    /// `q_values`/`backward` per state in row order — the property that
    /// makes the batched DQN update reproduce serial-update training
    /// exactly (pinned by `tests/train_determinism.rs`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before
    /// [`QNetwork::q_values_batch_train`] or with a gradient matrix whose
    /// shape does not match the cached batch.
    fn backward_batch(&mut self, grad_q: &Matrix);

    /// Mutable access to all trainable parameters (stable ordering).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Copies parameter values from another network of the same shape
    /// (used to refresh the target network).
    fn copy_params_from(&mut self, source: &mut dyn QNetwork) {
        let source_values: Vec<neural::Matrix> = source
            .params_mut()
            .iter()
            .map(|p| p.value.clone())
            .collect();
        for (dst, src) in self.params_mut().into_iter().zip(source_values) {
            dst.value = src;
        }
    }
}

/// Shared fixture for the Q-network batching tests: distinct decision-point
/// states from one undefended episode (beliefs and alerts evolve), so
/// batched-vs-solo comparisons run over non-identical inputs.
#[cfg(test)]
pub(crate) mod test_states {
    use crate::actions::ActionSpace;
    use crate::features::{NodeFeatureEncoder, StateFeatures};
    use dbn::learn::{learn_model, LearnConfig};
    use dbn::DbnFilter;
    use ics_sim::{DefenderAction, IcsEnvironment, SimConfig};

    pub(crate) fn episode_states(count: usize, seed: u64) -> (Vec<StateFeatures>, ActionSpace) {
        let sim = SimConfig::tiny().with_max_time(200).with_seed(seed);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed,
            sim: sim.clone(),
        });
        let mut env = IcsEnvironment::new(sim);
        let mut obs = env.reset();
        let encoder = NodeFeatureEncoder::new(env.topology());
        let mut filter = DbnFilter::new(model, env.topology().node_count());
        let space = ActionSpace::new(env.topology());
        let mut states = Vec::with_capacity(count);
        for _ in 0..count {
            filter.update(&obs);
            states.push(encoder.encode(&obs, &filter));
            for _ in 0..3 {
                obs = env.step(&[DefenderAction::NoAction]).observation;
            }
        }
        (states, space)
    }
}
