//! The attention-based Q-network of Fig. 5 and Table 6.
//!
//! Each node's belief/observation features are embedded by a shared MLP,
//! mixed across nodes by global self-attention, concatenated with the PLC
//! summary, and decoded by per-node-type output heads into action values.
//! Because every sub-graph is shared across nodes of a type, the parameter
//! count does not grow with the number of nodes on the network — the central
//! architectural claim of the paper.

use crate::actions::{ActionSpace, ACTIONS_PER_NODE, ACTIONS_PER_PLC};
use crate::agent::QNetwork;
use crate::features::{StateFeatures, NODE_FEATURE_DIM, PLC_FEATURE_DIM, PLC_SUMMARY_DIM};
use neural::layers::{Activation, Dense, SelfAttention};
use neural::{Layer, Matrix, Param};

const EMBED_HIDDEN: usize = 64;
const EMBED_OUT: usize = 32;
const CTX_DIM: usize = 64;
const HEAD_HIDDEN: usize = 128;

/// The attention Q-network (Fig. 5 / Table 6).
#[derive(Debug, Clone)]
pub struct AttentionQNet {
    action_space: ActionSpace,

    embed1: Dense,
    embed_act1: Activation,
    embed2: Dense,
    embed_act2: Activation,
    embed3: Dense,
    embed_act3: Activation,

    attn1: SelfAttention,
    attn2: SelfAttention,

    host_head1: Dense,
    host_act: Activation,
    host_head2: Dense,
    host_out: Activation,

    server_head1: Dense,
    server_act: Activation,
    server_head2: Dense,
    server_out: Activation,

    plc_head1: Dense,
    plc_act: Activation,
    plc_head2: Dense,
    plc_out: Activation,

    noact_head1: Dense,
    noact_act: Activation,
    noact_head2: Dense,
    noact_out: Activation,

    cache: Option<ForwardCache>,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    node_count: usize,
    plc_count: usize,
    host_rows: Vec<usize>,
    server_rows: Vec<usize>,
}

impl AttentionQNet {
    /// Builds the network for a given action space (which fixes the node and
    /// PLC counts the flat output must cover, though the parameters are
    /// independent of both).
    pub fn new(action_space: ActionSpace, seed: u64) -> Self {
        let head_in = CTX_DIM + PLC_SUMMARY_DIM;
        let plc_head_in = PLC_FEATURE_DIM + CTX_DIM;
        Self {
            action_space,
            embed1: Dense::new(NODE_FEATURE_DIM, EMBED_HIDDEN, seed.wrapping_add(1)),
            embed_act1: Activation::relu(),
            embed2: Dense::new(EMBED_HIDDEN, EMBED_HIDDEN, seed.wrapping_add(2)),
            embed_act2: Activation::relu(),
            embed3: Dense::new(EMBED_HIDDEN, EMBED_OUT, seed.wrapping_add(3)),
            embed_act3: Activation::relu(),
            attn1: SelfAttention::new(EMBED_OUT, CTX_DIM, CTX_DIM, seed.wrapping_add(4)),
            attn2: SelfAttention::new(CTX_DIM, CTX_DIM, CTX_DIM, seed.wrapping_add(5)),
            host_head1: Dense::new(head_in, HEAD_HIDDEN, seed.wrapping_add(6)),
            host_act: Activation::relu(),
            host_head2: Dense::new(HEAD_HIDDEN, ACTIONS_PER_NODE, seed.wrapping_add(7)),
            host_out: Activation::tanh(),
            server_head1: Dense::new(head_in, HEAD_HIDDEN, seed.wrapping_add(8)),
            server_act: Activation::relu(),
            server_head2: Dense::new(HEAD_HIDDEN, ACTIONS_PER_NODE, seed.wrapping_add(9)),
            server_out: Activation::tanh(),
            plc_head1: Dense::new(plc_head_in, HEAD_HIDDEN, seed.wrapping_add(10)),
            plc_act: Activation::relu(),
            plc_head2: Dense::new(HEAD_HIDDEN, ACTIONS_PER_PLC, seed.wrapping_add(11)),
            plc_out: Activation::tanh(),
            noact_head1: Dense::new(head_in, HEAD_HIDDEN, seed.wrapping_add(12)),
            noact_act: Activation::relu(),
            noact_head2: Dense::new(HEAD_HIDDEN, 1, seed.wrapping_add(13)),
            noact_out: Activation::tanh(),
            cache: None,
        }
    }

    /// The action space the flat output covers.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    fn broadcast_rows(row: &Matrix, rows: usize) -> Matrix {
        let mut out = Matrix::zeros(rows, row.cols());
        for i in 0..rows {
            for j in 0..row.cols() {
                out.set(i, j, row.get(0, j));
            }
        }
        out
    }
}

impl QNetwork for AttentionQNet {
    fn q_values(&mut self, features: &StateFeatures) -> Vec<f32> {
        let n = features.node_count();
        let p = features.plc_count();

        // Shared per-node embedding.
        let e = self
            .embed_act1
            .forward(&self.embed1.forward(&features.nodes));
        let e = self.embed_act2.forward(&self.embed2.forward(&e));
        let e = self.embed_act3.forward(&self.embed3.forward(&e));

        // Global attention over node embeddings.
        let ctx = self.attn1.forward(&e);
        let ctx = self.attn2.forward(&ctx);
        let mean_ctx = ctx.mean_rows();

        // Per-node head input: context + PLC summary.
        let plc_sum = Self::broadcast_rows(&features.plc_summary, n);
        let h = ctx.hcat(&plc_sum);

        let host_in = h.select_rows(&features.host_rows);
        let server_in = h.select_rows(&features.server_rows);

        let q_host = if features.host_rows.is_empty() {
            Matrix::zeros(0, ACTIONS_PER_NODE)
        } else {
            let x = self.host_act.forward(&self.host_head1.forward(&host_in));
            self.host_out.forward(&self.host_head2.forward(&x))
        };
        let q_server = if features.server_rows.is_empty() {
            Matrix::zeros(0, ACTIONS_PER_NODE)
        } else {
            let x = self
                .server_act
                .forward(&self.server_head1.forward(&server_in));
            self.server_out.forward(&self.server_head2.forward(&x))
        };

        // No-action value from the pooled context.
        let noact_in = mean_ctx.hcat(&features.plc_summary);
        let x = self.noact_act.forward(&self.noact_head1.forward(&noact_in));
        let q_noact = self.noact_out.forward(&self.noact_head2.forward(&x));

        // PLC head: per-PLC status one-hot + pooled context.
        let q_plc = if p == 0 {
            Matrix::zeros(0, ACTIONS_PER_PLC)
        } else {
            let plc_in = features.plcs.hcat(&Self::broadcast_rows(&mean_ctx, p));
            let x = self.plc_act.forward(&self.plc_head1.forward(&plc_in));
            self.plc_out.forward(&self.plc_head2.forward(&x))
        };

        // Assemble the flat Q-vector in action-space order.
        let mut q = vec![0.0f32; self.action_space.len()];
        q[0] = q_noact.get(0, 0);
        for (row, node) in features.host_rows.iter().enumerate() {
            for a in 0..ACTIONS_PER_NODE {
                q[1 + node * ACTIONS_PER_NODE + a] = q_host.get(row, a);
            }
        }
        for (row, node) in features.server_rows.iter().enumerate() {
            for a in 0..ACTIONS_PER_NODE {
                q[1 + node * ACTIONS_PER_NODE + a] = q_server.get(row, a);
            }
        }
        let plc_base = 1 + ACTIONS_PER_NODE * n;
        for plc in 0..p {
            for a in 0..ACTIONS_PER_PLC {
                q[plc_base + plc * ACTIONS_PER_PLC + a] = q_plc.get(plc, a);
            }
        }

        self.cache = Some(ForwardCache {
            node_count: n,
            plc_count: p,
            host_rows: features.host_rows.clone(),
            server_rows: features.server_rows.clone(),
        });
        q
    }

    fn backward(&mut self, grad_q: &[f32]) {
        let cache = self.cache.clone().expect("backward called before q_values");
        let n = cache.node_count;
        let p = cache.plc_count;
        assert_eq!(
            grad_q.len(),
            self.action_space.len(),
            "gradient length mismatch"
        );

        // Split the flat gradient back into per-head blocks.
        let mut grad_host = Matrix::zeros(cache.host_rows.len(), ACTIONS_PER_NODE);
        for (row, node) in cache.host_rows.iter().enumerate() {
            for a in 0..ACTIONS_PER_NODE {
                grad_host.set(row, a, grad_q[1 + node * ACTIONS_PER_NODE + a]);
            }
        }
        let mut grad_server = Matrix::zeros(cache.server_rows.len(), ACTIONS_PER_NODE);
        for (row, node) in cache.server_rows.iter().enumerate() {
            for a in 0..ACTIONS_PER_NODE {
                grad_server.set(row, a, grad_q[1 + node * ACTIONS_PER_NODE + a]);
            }
        }
        let grad_noact = Matrix::row_vector(&[grad_q[0]]);
        let plc_base = 1 + ACTIONS_PER_NODE * n;
        let mut grad_plc = Matrix::zeros(p, ACTIONS_PER_PLC);
        for plc in 0..p {
            for a in 0..ACTIONS_PER_PLC {
                grad_plc.set(plc, a, grad_q[plc_base + plc * ACTIONS_PER_PLC + a]);
            }
        }

        let head_in = CTX_DIM + PLC_SUMMARY_DIM;
        let mut grad_h = Matrix::zeros(n, head_in);

        // Host head.
        if !cache.host_rows.is_empty() {
            let g = self.host_out.backward(&grad_host);
            let g = self.host_head2.backward(&g);
            let g = self.host_act.backward(&g);
            let g = self.host_head1.backward(&g);
            for (row, node) in cache.host_rows.iter().enumerate() {
                for c in 0..head_in {
                    grad_h.set(*node, c, grad_h.get(*node, c) + g.get(row, c));
                }
            }
        }
        // Server head.
        if !cache.server_rows.is_empty() {
            let g = self.server_out.backward(&grad_server);
            let g = self.server_head2.backward(&g);
            let g = self.server_act.backward(&g);
            let g = self.server_head1.backward(&g);
            for (row, node) in cache.server_rows.iter().enumerate() {
                for c in 0..head_in {
                    grad_h.set(*node, c, grad_h.get(*node, c) + g.get(row, c));
                }
            }
        }

        // No-action head -> gradient on the pooled context.
        let g = self.noact_out.backward(&grad_noact);
        let g = self.noact_head2.backward(&g);
        let g = self.noact_act.backward(&g);
        let grad_noact_in = self.noact_head1.backward(&g);
        let (mut grad_mean_ctx, _grad_plc_summary) = grad_noact_in.hsplit(CTX_DIM);

        // PLC head -> more gradient on the pooled context.
        if p > 0 {
            let g = self.plc_out.backward(&grad_plc);
            let g = self.plc_head2.backward(&g);
            let g = self.plc_act.backward(&g);
            let grad_plc_in = self.plc_head1.backward(&g);
            let (_grad_plc_feats, grad_ctx_from_plc) = grad_plc_in.hsplit(PLC_FEATURE_DIM);
            grad_mean_ctx.accumulate(&grad_ctx_from_plc.sum_rows());
        }

        // Split the per-node head gradient into context and PLC-summary parts.
        let (mut grad_ctx, _grad_plc_sum) = grad_h.hsplit(CTX_DIM);

        // Mean pooling backward: each row receives 1/n of the pooled gradient.
        let pooled = grad_mean_ctx.scale(1.0 / n.max(1) as f32);
        for i in 0..n {
            for c in 0..CTX_DIM {
                grad_ctx.set(i, c, grad_ctx.get(i, c) + pooled.get(0, c));
            }
        }

        // Attention and embedding backward.
        let g = self.attn2.backward(&grad_ctx);
        let g = self.attn1.backward(&g);
        let g = self.embed_act3.backward(&g);
        let g = self.embed3.backward(&g);
        let g = self.embed_act2.backward(&g);
        let g = self.embed2.backward(&g);
        let g = self.embed_act1.backward(&g);
        let _ = self.embed1.backward(&g);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.embed1.params_mut());
        params.extend(self.embed2.params_mut());
        params.extend(self.embed3.params_mut());
        params.extend(self.attn1.params_mut());
        params.extend(self.attn2.params_mut());
        params.extend(self.host_head1.params_mut());
        params.extend(self.host_head2.params_mut());
        params.extend(self.server_head1.params_mut());
        params.extend(self.server_head2.params_mut());
        params.extend(self.plc_head1.params_mut());
        params.extend(self.plc_head2.params_mut());
        params.extend(self.noact_head1.params_mut());
        params.extend(self.noact_head2.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NodeFeatureEncoder;
    use dbn::learn::{learn_model, LearnConfig};
    use dbn::DbnFilter;
    use ics_net::TopologySpec;
    use ics_sim::{IcsEnvironment, SimConfig};

    fn features_for(spec: &TopologySpec, seed: u64) -> (StateFeatures, ActionSpace) {
        let sim = SimConfig {
            topology: spec.clone(),
            ..SimConfig::tiny()
        }
        .with_max_time(60)
        .with_seed(seed);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed,
            sim: sim.clone(),
        });
        let mut env = IcsEnvironment::new(sim);
        let obs = env.reset();
        let encoder = NodeFeatureEncoder::new(env.topology());
        let filter = DbnFilter::new(model, env.topology().node_count());
        let space = ActionSpace::new(env.topology());
        (encoder.encode(&obs, &filter), space)
    }

    #[test]
    fn q_output_covers_the_action_space_and_is_bounded() {
        let (features, space) = features_for(&TopologySpec::tiny(), 1);
        let mut net = AttentionQNet::new(space.clone(), 0);
        let q = net.q_values(&features);
        assert_eq!(q.len(), space.len());
        assert!(
            q.iter().all(|v| v.abs() <= 1.0),
            "tanh heads bound Q values"
        );
        assert_eq!(net.action_space().len(), space.len());
    }

    #[test]
    fn parameter_count_is_independent_of_network_size() {
        let (_, small_space) = features_for(&TopologySpec::tiny(), 2);
        let (_, large_space) = features_for(&TopologySpec::paper_small(), 3);
        let mut small = AttentionQNet::new(small_space, 0);
        let mut large = AttentionQNet::new(large_space, 0);
        assert_eq!(small.parameter_count(), large.parameter_count());
        // Comfortably under a million parameters.
        assert!(small.parameter_count() < 1_000_000);
    }

    #[test]
    fn backward_accumulates_gradients_for_selected_action() {
        let (features, space) = features_for(&TopologySpec::tiny(), 4);
        let mut net = AttentionQNet::new(space.clone(), 7);
        let q = net.q_values(&features);
        let mut grad = vec![0.0f32; q.len()];
        grad[3] = 1.0; // some per-node action
        grad[0] = 0.5; // the no-action value
        net.zero_grad();
        net.backward(&grad);
        let total_grad: f32 = net.params_mut().iter().map(|p| p.grad.norm()).sum();
        assert!(
            total_grad > 0.0,
            "backward should produce non-zero gradients"
        );
    }

    #[test]
    fn training_step_reduces_td_error_on_a_fixed_target() {
        let (features, space) = features_for(&TopologySpec::tiny(), 5);
        let mut net = AttentionQNet::new(space.clone(), 11);
        let mut opt = neural::optim::Adam::new(1e-3);
        let action = 2usize;
        let target = 0.7f32;
        let initial_error = (net.q_values(&features)[action] - target).abs();
        for _ in 0..60 {
            let q = net.q_values(&features);
            let mut grad = vec![0.0f32; q.len()];
            grad[action] = q[action] - target;
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net.params_mut());
        }
        let final_error = (net.q_values(&features)[action] - target).abs();
        assert!(
            final_error < initial_error * 0.5,
            "TD error did not shrink: {initial_error} -> {final_error}"
        );
    }

    #[test]
    fn target_network_copy_matches_online_outputs() {
        let (features, space) = features_for(&TopologySpec::tiny(), 6);
        let mut online = AttentionQNet::new(space.clone(), 1);
        let mut target = AttentionQNet::new(space, 2);
        let q_online = online.q_values(&features);
        let q_target_before = target.q_values(&features);
        assert_ne!(q_online, q_target_before);
        target.copy_params_from(&mut online);
        let q_target_after = target.q_values(&features);
        for (a, b) in q_online.iter().zip(&q_target_after) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
