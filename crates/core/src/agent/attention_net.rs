//! The attention-based Q-network of Fig. 5 and Table 6.
//!
//! Each node's belief/observation features are embedded by a shared MLP,
//! mixed across nodes by global self-attention, concatenated with the PLC
//! summary, and decoded by per-node-type output heads into action values.
//! Because every sub-graph is shared across nodes of a type, the parameter
//! count does not grow with the number of nodes on the network — the central
//! architectural claim of the paper.

use crate::actions::{ActionSpace, ACTIONS_PER_NODE, ACTIONS_PER_PLC};
use crate::agent::QNetwork;
use crate::features::{StateFeatures, NODE_FEATURE_DIM, PLC_FEATURE_DIM, PLC_SUMMARY_DIM};
use neural::layers::{Activation, Dense, SelfAttention};
use neural::{Batch, Layer, Matrix, Param, Scratch};

const EMBED_HIDDEN: usize = 64;
const EMBED_OUT: usize = 32;
const CTX_DIM: usize = 64;
const HEAD_HIDDEN: usize = 128;

/// The attention Q-network (Fig. 5 / Table 6).
#[derive(Debug, Clone)]
pub struct AttentionQNet {
    action_space: ActionSpace,

    embed1: Dense,
    embed_act1: Activation,
    embed2: Dense,
    embed_act2: Activation,
    embed3: Dense,
    embed_act3: Activation,

    attn1: SelfAttention,
    attn2: SelfAttention,

    host_head1: Dense,
    host_act: Activation,
    host_head2: Dense,
    host_out: Activation,

    server_head1: Dense,
    server_act: Activation,
    server_head2: Dense,
    server_out: Activation,

    plc_head1: Dense,
    plc_act: Activation,
    plc_head2: Dense,
    plc_out: Activation,

    noact_head1: Dense,
    noact_act: Activation,
    noact_head2: Dense,
    noact_out: Activation,

    scratch: Scratch,
    cache: Option<ForwardCache>,
    batch_cache: Option<BatchForwardCache>,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    node_count: usize,
    plc_count: usize,
    host_rows: Vec<usize>,
    server_rows: Vec<usize>,
}

/// Routing cache of the batched training forward: every numeric
/// intermediate lives in the layers' own batch caches, so the network only
/// has to remember the minibatch shape and the (topology-shared) head
/// routing to drive the batched backward's gathers and scatters.
#[derive(Debug, Clone)]
struct BatchForwardCache {
    items: usize,
    node_count: usize,
    plc_count: usize,
    host_rows: Vec<usize>,
    server_rows: Vec<usize>,
}

impl AttentionQNet {
    /// Builds the network for a given action space (which fixes the node and
    /// PLC counts the flat output must cover, though the parameters are
    /// independent of both).
    pub fn new(action_space: ActionSpace, seed: u64) -> Self {
        let head_in = CTX_DIM + PLC_SUMMARY_DIM;
        let plc_head_in = PLC_FEATURE_DIM + CTX_DIM;
        Self {
            action_space,
            embed1: Dense::new(NODE_FEATURE_DIM, EMBED_HIDDEN, seed.wrapping_add(1)),
            embed_act1: Activation::relu(),
            embed2: Dense::new(EMBED_HIDDEN, EMBED_HIDDEN, seed.wrapping_add(2)),
            embed_act2: Activation::relu(),
            embed3: Dense::new(EMBED_HIDDEN, EMBED_OUT, seed.wrapping_add(3)),
            embed_act3: Activation::relu(),
            attn1: SelfAttention::new(EMBED_OUT, CTX_DIM, CTX_DIM, seed.wrapping_add(4)),
            attn2: SelfAttention::new(CTX_DIM, CTX_DIM, CTX_DIM, seed.wrapping_add(5)),
            host_head1: Dense::new(head_in, HEAD_HIDDEN, seed.wrapping_add(6)),
            host_act: Activation::relu(),
            host_head2: Dense::new(HEAD_HIDDEN, ACTIONS_PER_NODE, seed.wrapping_add(7)),
            host_out: Activation::tanh(),
            server_head1: Dense::new(head_in, HEAD_HIDDEN, seed.wrapping_add(8)),
            server_act: Activation::relu(),
            server_head2: Dense::new(HEAD_HIDDEN, ACTIONS_PER_NODE, seed.wrapping_add(9)),
            server_out: Activation::tanh(),
            plc_head1: Dense::new(plc_head_in, HEAD_HIDDEN, seed.wrapping_add(10)),
            plc_act: Activation::relu(),
            plc_head2: Dense::new(HEAD_HIDDEN, ACTIONS_PER_PLC, seed.wrapping_add(11)),
            plc_out: Activation::tanh(),
            noact_head1: Dense::new(head_in, HEAD_HIDDEN, seed.wrapping_add(12)),
            noact_act: Activation::relu(),
            noact_head2: Dense::new(HEAD_HIDDEN, 1, seed.wrapping_add(13)),
            noact_out: Activation::tanh(),
            scratch: Scratch::new(),
            cache: None,
            batch_cache: None,
        }
    }

    /// The action space the flat output covers.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    /// Pins every subsequent pass of this network to a specific kernel
    /// backend by swapping the internal scratch pool (new pool, so no
    /// buffers survive from the previous backend). Benches and
    /// cross-backend tests use this to compare backends side by side
    /// without touching the process-wide default.
    pub fn set_kernel_backend(&mut self, backend: neural::backend::BackendRef) {
        self.scratch = Scratch::with_backend(backend);
    }

    /// The kernel backend this network's passes dispatch to.
    pub fn kernel_backend(&self) -> neural::backend::BackendRef {
        self.scratch.backend()
    }

    /// Shared core of [`QNetwork::q_values_batch`] (`train = false`:
    /// inference, no cache touched) and
    /// [`QNetwork::q_values_batch_train`] (`train = true`: the layers write
    /// their batch caches and the head-routing cache is refreshed for
    /// [`QNetwork::backward_batch`]). One implementation of the stacked
    /// pass keeps the two paths bit-identical by construction.
    fn q_values_batch_impl(&mut self, features: &[&StateFeatures], train: bool) -> Vec<Vec<f32>> {
        if features.is_empty() {
            return Vec::new();
        }
        let b = features.len();
        let f0 = features[0];
        let n = f0.node_count();
        let p = f0.plc_count();
        for f in features {
            assert_eq!(f.node_count(), n, "batched states must share a topology");
            assert_eq!(f.plc_count(), p, "batched states must share a topology");
            assert_eq!(
                f.host_rows, f0.host_rows,
                "batched states must share head routing"
            );
            assert_eq!(
                f.server_rows, f0.server_rows,
                "batched states must share head routing"
            );
        }
        let hosts = f0.host_rows.len();
        let servers = f0.server_rows.len();
        let head_in = CTX_DIM + PLC_SUMMARY_DIM;
        let s = &mut self.scratch;

        // Shared per-node embedding over all states' node rows at once.
        let mut x = Batch::take(s, b, n, NODE_FEATURE_DIM);
        for (i, f) in features.iter().enumerate() {
            x.write_item(i, &f.nodes);
        }
        let y = fwd(&mut self.embed1, &x, s, train);
        s.recycle(x.into_matrix());
        let x = fwd(&mut self.embed_act1, &y, s, train);
        s.recycle(y.into_matrix());
        let y = fwd(&mut self.embed2, &x, s, train);
        s.recycle(x.into_matrix());
        let x = fwd(&mut self.embed_act2, &y, s, train);
        s.recycle(y.into_matrix());
        let y = fwd(&mut self.embed3, &x, s, train);
        s.recycle(x.into_matrix());
        let e = fwd(&mut self.embed_act3, &y, s, train);
        s.recycle(y.into_matrix());

        // Global attention within each state (per-item boundary).
        let x = fwd(&mut self.attn1, &e, s, train);
        s.recycle(e.into_matrix());
        let ctx = fwd(&mut self.attn2, &x, s, train);
        s.recycle(x.into_matrix());

        // Per-state pooled context.
        let mut mean_ctx = s.take(b, CTX_DIM);
        for i in 0..b {
            mean_row_block(ctx.matrix(), i * n, n, mean_ctx.row_mut(i));
        }

        // Per-node head input: context ++ that state's PLC summary.
        let mut h = s.take(b * n, head_in);
        for (i, f) in features.iter().enumerate() {
            for r in 0..n {
                let row = h.row_mut(i * n + r);
                row[..CTX_DIM].copy_from_slice(ctx.matrix().row(i * n + r));
                row[CTX_DIM..].copy_from_slice(f.plc_summary.row(0));
            }
        }
        s.recycle(ctx.into_matrix());

        let q_host = if hosts == 0 {
            None
        } else {
            let mut host_in = Batch::take(s, b, hosts, head_in);
            for i in 0..b {
                for (slot, &node) in f0.host_rows.iter().enumerate() {
                    host_in
                        .matrix_mut()
                        .row_mut(i * hosts + slot)
                        .copy_from_slice(h.row(i * n + node));
                }
            }
            Some(head_chain_batch(
                &mut self.host_head1,
                &mut self.host_act,
                &mut self.host_head2,
                &mut self.host_out,
                host_in,
                s,
                train,
            ))
        };
        let q_server = if servers == 0 {
            None
        } else {
            let mut server_in = Batch::take(s, b, servers, head_in);
            for i in 0..b {
                for (slot, &node) in f0.server_rows.iter().enumerate() {
                    server_in
                        .matrix_mut()
                        .row_mut(i * servers + slot)
                        .copy_from_slice(h.row(i * n + node));
                }
            }
            Some(head_chain_batch(
                &mut self.server_head1,
                &mut self.server_act,
                &mut self.server_head2,
                &mut self.server_out,
                server_in,
                s,
                train,
            ))
        };
        s.recycle(h);

        // No-action value from each state's pooled context.
        let mut noact_in = Batch::take(s, b, 1, head_in);
        for (i, f) in features.iter().enumerate() {
            let row = noact_in.matrix_mut().row_mut(i);
            row[..CTX_DIM].copy_from_slice(mean_ctx.row(i));
            row[CTX_DIM..].copy_from_slice(f.plc_summary.row(0));
        }
        let q_noact = head_chain_batch(
            &mut self.noact_head1,
            &mut self.noact_act,
            &mut self.noact_head2,
            &mut self.noact_out,
            noact_in,
            s,
            train,
        );

        // PLC head: per-PLC status one-hot ++ pooled context.
        let q_plc = if p == 0 {
            None
        } else {
            let mut plc_in = Batch::take(s, b, p, PLC_FEATURE_DIM + CTX_DIM);
            for (i, f) in features.iter().enumerate() {
                for r in 0..p {
                    let row = plc_in.matrix_mut().row_mut(i * p + r);
                    row[..PLC_FEATURE_DIM].copy_from_slice(f.plcs.row(r));
                    row[PLC_FEATURE_DIM..].copy_from_slice(mean_ctx.row(i));
                }
            }
            Some(head_chain_batch(
                &mut self.plc_head1,
                &mut self.plc_act,
                &mut self.plc_head2,
                &mut self.plc_out,
                plc_in,
                s,
                train,
            ))
        };
        s.recycle(mean_ctx);

        // Assemble each state's flat Q-vector in action-space order.
        let mut out = Vec::with_capacity(b);
        let plc_base = 1 + ACTIONS_PER_NODE * n;
        for i in 0..b {
            let mut q = vec![0.0f32; self.action_space.len()];
            q[0] = q_noact.matrix().get(i, 0);
            if let Some(qh) = &q_host {
                for (slot, &node) in f0.host_rows.iter().enumerate() {
                    let base = 1 + node * ACTIONS_PER_NODE;
                    q[base..base + ACTIONS_PER_NODE]
                        .copy_from_slice(qh.matrix().row(i * hosts + slot));
                }
            }
            if let Some(qs) = &q_server {
                for (slot, &node) in f0.server_rows.iter().enumerate() {
                    let base = 1 + node * ACTIONS_PER_NODE;
                    q[base..base + ACTIONS_PER_NODE]
                        .copy_from_slice(qs.matrix().row(i * servers + slot));
                }
            }
            if let Some(qp) = &q_plc {
                for plc in 0..p {
                    let base = plc_base + plc * ACTIONS_PER_PLC;
                    q[base..base + ACTIONS_PER_PLC].copy_from_slice(qp.matrix().row(i * p + plc));
                }
            }
            out.push(q);
        }
        if let Some(qh) = q_host {
            s.recycle(qh.into_matrix());
        }
        if let Some(qs) = q_server {
            s.recycle(qs.into_matrix());
        }
        if let Some(qp) = q_plc {
            s.recycle(qp.into_matrix());
        }
        s.recycle(q_noact.into_matrix());

        if train {
            // Refresh the batched routing cache, reusing its row-index buffers.
            let cache = self.batch_cache.get_or_insert_with(|| BatchForwardCache {
                items: 0,
                node_count: 0,
                plc_count: 0,
                host_rows: Vec::new(),
                server_rows: Vec::new(),
            });
            cache.items = b;
            cache.node_count = n;
            cache.plc_count = p;
            cache.host_rows.clear();
            cache.host_rows.extend_from_slice(&f0.host_rows);
            cache.server_rows.clear();
            cache.server_rows.extend_from_slice(&f0.server_rows);
        }
        out
    }
}

/// `hcat` of two row blocks written into a pooled matrix: every output row
/// is `left.row(i) ++ right_row` (with `right` broadcast when single-row).
fn hcat_broadcast_into(left: &Matrix, right: &Matrix, out: &mut Matrix) {
    let lc = left.cols();
    for i in 0..out.rows() {
        let right_row = if right.rows() == 1 { 0 } else { i };
        let row = out.row_mut(i);
        row[..lc].copy_from_slice(left.row(i));
        row[lc..].copy_from_slice(right.row(right_row));
    }
}

/// Column mean over the row block `start .. start + rows` of `src`, written
/// into `out`. Bit-identical to [`Matrix::mean_rows_into`] on the block
/// alone: zero, accumulate rows in ascending order, scale by `1/rows`.
fn mean_row_block(src: &Matrix, start: usize, rows: usize, out: &mut [f32]) {
    out.fill(0.0);
    for r in 0..rows {
        for (o, v) in out.iter_mut().zip(src.row(start + r)) {
            *o += v;
        }
    }
    if rows > 0 {
        let inv = 1.0 / rows as f32;
        for o in out {
            *o *= inv;
        }
    }
}

/// Dispatches one layer's batched forward: inference (`forward_batch`,
/// caches untouched) or training (`forward_batch_train`, batch cache
/// written). Keeping the dispatch in one place lets the whole stacked pass
/// exist once for both modes — the structural guarantee that the training
/// forward computes exactly what the inference forward computes.
fn fwd(layer: &mut dyn Layer, x: &Batch, s: &mut Scratch, train: bool) -> Batch {
    if train {
        layer.forward_batch_train(x, s)
    } else {
        layer.forward_batch(x, s)
    }
}

/// Runs a two-layer output head (dense → activation → dense → activation)
/// over a batch, recycling every intermediate. `train` selects the
/// cache-writing layer path (see [`fwd`]).
fn head_chain_batch(
    d1: &mut Dense,
    a1: &mut Activation,
    d2: &mut Dense,
    a2: &mut Activation,
    input: Batch,
    s: &mut Scratch,
    train: bool,
) -> Batch {
    let x = fwd(d1, &input, s, train);
    s.recycle(input.into_matrix());
    let y = fwd(a1, &x, s, train);
    s.recycle(x.into_matrix());
    let x = fwd(d2, &y, s, train);
    s.recycle(y.into_matrix());
    let q = fwd(a2, &x, s, train);
    s.recycle(x.into_matrix());
    q
}

/// Batched backward through a two-layer output head, returning the gradient
/// with respect to the head input.
fn head_chain_backward_batch(
    d1: &mut Dense,
    a1: &mut Activation,
    d2: &mut Dense,
    a2: &mut Activation,
    grad: Batch,
    s: &mut Scratch,
) -> Batch {
    let x = a2.backward_batch(&grad, s);
    s.recycle(grad.into_matrix());
    let y = d2.backward_batch(&x, s);
    s.recycle(x.into_matrix());
    let x = a1.backward_batch(&y, s);
    s.recycle(y.into_matrix());
    let g = d1.backward_batch(&x, s);
    s.recycle(x.into_matrix());
    g
}

impl QNetwork for AttentionQNet {
    /// The batch-first inference path: all states are stacked along the row
    /// axis and pushed through every stage in one pass — the per-node
    /// embedding and the output heads as single stacked matmuls, the
    /// attention layers with an explicit per-item boundary (each state's
    /// nodes attend only to that state's nodes). Every state's Q-vector is
    /// bit-identical to a solo [`AttentionQNet::q_values`] call, and the
    /// training cache is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the states do not share one topology (node/PLC counts and
    /// head routing must match — the batched engine only ever mixes lanes of
    /// the same scenario).
    fn q_values_batch(&mut self, features: &[&StateFeatures]) -> Vec<Vec<f32>> {
        self.q_values_batch_impl(features, false)
    }

    /// The batched *training* forward: the same stacked pass as
    /// [`AttentionQNet::q_values_batch`] (so every state's Q-vector is
    /// bit-identical to a solo [`AttentionQNet::q_values`]), but run through
    /// the layers' `forward_batch_train` path so batch-shaped caches feed
    /// one [`AttentionQNet::backward_batch`] for the whole minibatch.
    ///
    /// # Panics
    ///
    /// Panics if the states do not share one topology (the minibatch is
    /// sampled from one scenario's replay, so they always do).
    fn q_values_batch_train(&mut self, features: &[&StateFeatures]) -> Vec<Vec<f32>> {
        self.q_values_batch_impl(features, true)
    }

    fn backward_batch(&mut self, grad_q: &Matrix) {
        let cache = self
            .batch_cache
            .take()
            .expect("backward_batch called before q_values_batch_train");
        let b = cache.items;
        let n = cache.node_count;
        let p = cache.plc_count;
        let hosts = cache.host_rows.len();
        let servers = cache.server_rows.len();
        assert_eq!(
            grad_q.shape(),
            (b, self.action_space.len()),
            "batched gradient shape mismatch"
        );
        let s = &mut self.scratch;

        let head_in = CTX_DIM + PLC_SUMMARY_DIM;
        let mut grad_h = s.take(b * n, head_in);

        // Host head.
        if hosts > 0 {
            let mut grad_host = Batch::take(s, b, hosts, ACTIONS_PER_NODE);
            for i in 0..b {
                for (slot, &node) in cache.host_rows.iter().enumerate() {
                    let base = 1 + node * ACTIONS_PER_NODE;
                    grad_host
                        .matrix_mut()
                        .row_mut(i * hosts + slot)
                        .copy_from_slice(&grad_q.row(i)[base..base + ACTIONS_PER_NODE]);
                }
            }
            let g = head_chain_backward_batch(
                &mut self.host_head1,
                &mut self.host_act,
                &mut self.host_head2,
                &mut self.host_out,
                grad_host,
                s,
            );
            for i in 0..b {
                for (slot, &node) in cache.host_rows.iter().enumerate() {
                    for (d, &v) in grad_h
                        .row_mut(i * n + node)
                        .iter_mut()
                        .zip(g.matrix().row(i * hosts + slot))
                    {
                        *d += v;
                    }
                }
            }
            s.recycle(g.into_matrix());
        }
        // Server head.
        if servers > 0 {
            let mut grad_server = Batch::take(s, b, servers, ACTIONS_PER_NODE);
            for i in 0..b {
                for (slot, &node) in cache.server_rows.iter().enumerate() {
                    let base = 1 + node * ACTIONS_PER_NODE;
                    grad_server
                        .matrix_mut()
                        .row_mut(i * servers + slot)
                        .copy_from_slice(&grad_q.row(i)[base..base + ACTIONS_PER_NODE]);
                }
            }
            let g = head_chain_backward_batch(
                &mut self.server_head1,
                &mut self.server_act,
                &mut self.server_head2,
                &mut self.server_out,
                grad_server,
                s,
            );
            for i in 0..b {
                for (slot, &node) in cache.server_rows.iter().enumerate() {
                    for (d, &v) in grad_h
                        .row_mut(i * n + node)
                        .iter_mut()
                        .zip(g.matrix().row(i * servers + slot))
                    {
                        *d += v;
                    }
                }
            }
            s.recycle(g.into_matrix());
        }

        // No-action head -> gradient on each state's pooled context.
        let mut grad_noact = Batch::take(s, b, 1, 1);
        for i in 0..b {
            grad_noact.matrix_mut().row_mut(i)[0] = grad_q.row(i)[0];
        }
        let grad_noact_in = head_chain_backward_batch(
            &mut self.noact_head1,
            &mut self.noact_act,
            &mut self.noact_head2,
            &mut self.noact_out,
            grad_noact,
            s,
        );
        let mut grad_mean_ctx = s.take(b, CTX_DIM);
        for i in 0..b {
            grad_mean_ctx
                .row_mut(i)
                .copy_from_slice(&grad_noact_in.matrix().row(i)[..CTX_DIM]);
        }
        s.recycle(grad_noact_in.into_matrix());

        // PLC head -> more gradient on each state's pooled context.
        if p > 0 {
            let mut grad_plc = Batch::take(s, b, p, ACTIONS_PER_PLC);
            let plc_base = 1 + ACTIONS_PER_NODE * n;
            for i in 0..b {
                for plc in 0..p {
                    let base = plc_base + plc * ACTIONS_PER_PLC;
                    grad_plc
                        .matrix_mut()
                        .row_mut(i * p + plc)
                        .copy_from_slice(&grad_q.row(i)[base..base + ACTIONS_PER_PLC]);
                }
            }
            let grad_plc_in = head_chain_backward_batch(
                &mut self.plc_head1,
                &mut self.plc_act,
                &mut self.plc_head2,
                &mut self.plc_out,
                grad_plc,
                s,
            );
            for i in 0..b {
                for r in 0..p {
                    let src = &grad_plc_in.matrix().row(i * p + r)[PLC_FEATURE_DIM..];
                    for (d, &v) in grad_mean_ctx.row_mut(i).iter_mut().zip(src) {
                        *d += v;
                    }
                }
            }
            s.recycle(grad_plc_in.into_matrix());
        }

        // Context gradient per state: the per-node head slice plus 1/n of
        // that state's pooled gradient (mean-pooling backward).
        let mut grad_ctx = Batch::take(s, b, n, CTX_DIM);
        let inv_n = 1.0 / n.max(1) as f32;
        for i in 0..b {
            for r in 0..n {
                let dst = grad_ctx.matrix_mut().row_mut(i * n + r);
                dst.copy_from_slice(&grad_h.row(i * n + r)[..CTX_DIM]);
                for (d, &g) in dst.iter_mut().zip(grad_mean_ctx.row(i)) {
                    *d += g * inv_n;
                }
            }
        }
        s.recycle(grad_h);
        s.recycle(grad_mean_ctx);

        // Attention and embedding backward, batch-first all the way down.
        let x = self.attn2.backward_batch(&grad_ctx, s);
        s.recycle(grad_ctx.into_matrix());
        let y = self.attn1.backward_batch(&x, s);
        s.recycle(x.into_matrix());
        let x = self.embed_act3.backward_batch(&y, s);
        s.recycle(y.into_matrix());
        let y = self.embed3.backward_batch(&x, s);
        s.recycle(x.into_matrix());
        let x = self.embed_act2.backward_batch(&y, s);
        s.recycle(y.into_matrix());
        let y = self.embed2.backward_batch(&x, s);
        s.recycle(x.into_matrix());
        let x = self.embed_act1.backward_batch(&y, s);
        s.recycle(y.into_matrix());
        let y = self.embed1.backward_batch(&x, s);
        s.recycle(x.into_matrix());
        s.recycle(y.into_matrix());
        self.batch_cache = Some(cache);
    }

    fn q_values(&mut self, features: &StateFeatures) -> Vec<f32> {
        let n = features.node_count();
        let p = features.plc_count();
        let s = &mut self.scratch;

        // Shared per-node embedding.
        let x = self.embed1.forward(&features.nodes, s);
        let y = self.embed_act1.forward(&x, s);
        s.recycle(x);
        let x = self.embed2.forward(&y, s);
        s.recycle(y);
        let y = self.embed_act2.forward(&x, s);
        s.recycle(x);
        let x = self.embed3.forward(&y, s);
        s.recycle(y);
        let e = self.embed_act3.forward(&x, s);
        s.recycle(x);

        // Global attention over node embeddings.
        let x = self.attn1.forward(&e, s);
        s.recycle(e);
        let ctx = self.attn2.forward(&x, s);
        s.recycle(x);
        let mut mean_ctx = s.take(1, CTX_DIM);
        ctx.mean_rows_into(&mut mean_ctx);

        // Per-node head input: context + PLC summary (broadcast).
        let mut h = s.take(n, CTX_DIM + PLC_SUMMARY_DIM);
        hcat_broadcast_into(&ctx, &features.plc_summary, &mut h);
        s.recycle(ctx);

        let q_host = if features.host_rows.is_empty() {
            s.take(0, ACTIONS_PER_NODE)
        } else {
            let mut host_in = s.take(features.host_rows.len(), h.cols());
            h.select_rows_into(&features.host_rows, &mut host_in);
            let x = self.host_head1.forward(&host_in, s);
            s.recycle(host_in);
            let y = self.host_act.forward(&x, s);
            s.recycle(x);
            let x = self.host_head2.forward(&y, s);
            s.recycle(y);
            let q = self.host_out.forward(&x, s);
            s.recycle(x);
            q
        };
        let q_server = if features.server_rows.is_empty() {
            s.take(0, ACTIONS_PER_NODE)
        } else {
            let mut server_in = s.take(features.server_rows.len(), h.cols());
            h.select_rows_into(&features.server_rows, &mut server_in);
            let x = self.server_head1.forward(&server_in, s);
            s.recycle(server_in);
            let y = self.server_act.forward(&x, s);
            s.recycle(x);
            let x = self.server_head2.forward(&y, s);
            s.recycle(y);
            let q = self.server_out.forward(&x, s);
            s.recycle(x);
            q
        };
        s.recycle(h);

        // No-action value from the pooled context.
        let mut noact_in = s.take(1, CTX_DIM + PLC_SUMMARY_DIM);
        hcat_broadcast_into(&mean_ctx, &features.plc_summary, &mut noact_in);
        let x = self.noact_head1.forward(&noact_in, s);
        s.recycle(noact_in);
        let y = self.noact_act.forward(&x, s);
        s.recycle(x);
        let x = self.noact_head2.forward(&y, s);
        s.recycle(y);
        let q_noact = self.noact_out.forward(&x, s);
        s.recycle(x);

        // PLC head: per-PLC status one-hot + pooled context (broadcast).
        let q_plc = if p == 0 {
            s.take(0, ACTIONS_PER_PLC)
        } else {
            let mut plc_in = s.take(p, PLC_FEATURE_DIM + CTX_DIM);
            hcat_broadcast_into(&features.plcs, &mean_ctx, &mut plc_in);
            let x = self.plc_head1.forward(&plc_in, s);
            s.recycle(plc_in);
            let y = self.plc_act.forward(&x, s);
            s.recycle(x);
            let x = self.plc_head2.forward(&y, s);
            s.recycle(y);
            let q = self.plc_out.forward(&x, s);
            s.recycle(x);
            q
        };
        s.recycle(mean_ctx);

        // Assemble the flat Q-vector in action-space order.
        let mut q = vec![0.0f32; self.action_space.len()];
        q[0] = q_noact.get(0, 0);
        for (row, node) in features.host_rows.iter().enumerate() {
            let base = 1 + node * ACTIONS_PER_NODE;
            q[base..base + ACTIONS_PER_NODE].copy_from_slice(q_host.row(row));
        }
        for (row, node) in features.server_rows.iter().enumerate() {
            let base = 1 + node * ACTIONS_PER_NODE;
            q[base..base + ACTIONS_PER_NODE].copy_from_slice(q_server.row(row));
        }
        let plc_base = 1 + ACTIONS_PER_NODE * n;
        for plc in 0..p {
            let base = plc_base + plc * ACTIONS_PER_PLC;
            q[base..base + ACTIONS_PER_PLC].copy_from_slice(q_plc.row(plc));
        }
        s.recycle(q_host);
        s.recycle(q_server);
        s.recycle(q_noact);
        s.recycle(q_plc);

        // Refresh the forward cache, reusing its row-index buffers.
        let cache = self.cache.get_or_insert_with(|| ForwardCache {
            node_count: 0,
            plc_count: 0,
            host_rows: Vec::new(),
            server_rows: Vec::new(),
        });
        cache.node_count = n;
        cache.plc_count = p;
        cache.host_rows.clear();
        cache.host_rows.extend_from_slice(&features.host_rows);
        cache.server_rows.clear();
        cache.server_rows.extend_from_slice(&features.server_rows);
        q
    }

    fn backward(&mut self, grad_q: &[f32]) {
        let cache = self.cache.take().expect("backward called before q_values");
        let n = cache.node_count;
        let p = cache.plc_count;
        assert_eq!(
            grad_q.len(),
            self.action_space.len(),
            "gradient length mismatch"
        );
        let s = &mut self.scratch;

        let head_in = CTX_DIM + PLC_SUMMARY_DIM;
        let mut grad_h = s.take(n, head_in);

        // Host head.
        if !cache.host_rows.is_empty() {
            let mut grad_host = s.take(cache.host_rows.len(), ACTIONS_PER_NODE);
            for (row, node) in cache.host_rows.iter().enumerate() {
                let base = 1 + node * ACTIONS_PER_NODE;
                grad_host
                    .row_mut(row)
                    .copy_from_slice(&grad_q[base..base + ACTIONS_PER_NODE]);
            }
            let x = self.host_out.backward(&grad_host, s);
            s.recycle(grad_host);
            let y = self.host_head2.backward(&x, s);
            s.recycle(x);
            let x = self.host_act.backward(&y, s);
            s.recycle(y);
            let g = self.host_head1.backward(&x, s);
            s.recycle(x);
            for (row, node) in cache.host_rows.iter().enumerate() {
                for (d, &v) in grad_h.row_mut(*node).iter_mut().zip(g.row(row)) {
                    *d += v;
                }
            }
            s.recycle(g);
        }
        // Server head.
        if !cache.server_rows.is_empty() {
            let mut grad_server = s.take(cache.server_rows.len(), ACTIONS_PER_NODE);
            for (row, node) in cache.server_rows.iter().enumerate() {
                let base = 1 + node * ACTIONS_PER_NODE;
                grad_server
                    .row_mut(row)
                    .copy_from_slice(&grad_q[base..base + ACTIONS_PER_NODE]);
            }
            let x = self.server_out.backward(&grad_server, s);
            s.recycle(grad_server);
            let y = self.server_head2.backward(&x, s);
            s.recycle(x);
            let x = self.server_act.backward(&y, s);
            s.recycle(y);
            let g = self.server_head1.backward(&x, s);
            s.recycle(x);
            for (row, node) in cache.server_rows.iter().enumerate() {
                for (d, &v) in grad_h.row_mut(*node).iter_mut().zip(g.row(row)) {
                    *d += v;
                }
            }
            s.recycle(g);
        }

        // No-action head -> gradient on the pooled context.
        let mut grad_noact = s.take(1, 1);
        grad_noact.row_mut(0)[0] = grad_q[0];
        let x = self.noact_out.backward(&grad_noact, s);
        s.recycle(grad_noact);
        let y = self.noact_head2.backward(&x, s);
        s.recycle(x);
        let x = self.noact_act.backward(&y, s);
        s.recycle(y);
        let grad_noact_in = self.noact_head1.backward(&x, s);
        s.recycle(x);
        let mut grad_mean_ctx = s.take(1, CTX_DIM);
        grad_mean_ctx
            .row_mut(0)
            .copy_from_slice(&grad_noact_in.row(0)[..CTX_DIM]);
        s.recycle(grad_noact_in);

        // PLC head -> more gradient on the pooled context.
        if p > 0 {
            let mut grad_plc = s.take(p, ACTIONS_PER_PLC);
            let plc_base = 1 + ACTIONS_PER_NODE * n;
            for plc in 0..p {
                let base = plc_base + plc * ACTIONS_PER_PLC;
                grad_plc
                    .row_mut(plc)
                    .copy_from_slice(&grad_q[base..base + ACTIONS_PER_PLC]);
            }
            let x = self.plc_out.backward(&grad_plc, s);
            s.recycle(grad_plc);
            let y = self.plc_head2.backward(&x, s);
            s.recycle(x);
            let x = self.plc_act.backward(&y, s);
            s.recycle(y);
            let grad_plc_in = self.plc_head1.backward(&x, s);
            s.recycle(x);
            for i in 0..p {
                let src = &grad_plc_in.row(i)[PLC_FEATURE_DIM..];
                for (d, &v) in grad_mean_ctx.row_mut(0).iter_mut().zip(src) {
                    *d += v;
                }
            }
            s.recycle(grad_plc_in);
        }

        // Context gradient: the per-node head slice plus 1/n of the pooled
        // gradient (mean-pooling backward).
        let mut grad_ctx = s.take(n, CTX_DIM);
        let inv_n = 1.0 / n.max(1) as f32;
        for i in 0..n {
            let dst = grad_ctx.row_mut(i);
            dst.copy_from_slice(&grad_h.row(i)[..CTX_DIM]);
            for (d, &g) in dst.iter_mut().zip(grad_mean_ctx.row(0)) {
                *d += g * inv_n;
            }
        }
        s.recycle(grad_h);
        s.recycle(grad_mean_ctx);

        // Attention and embedding backward.
        let x = self.attn2.backward(&grad_ctx, s);
        s.recycle(grad_ctx);
        let y = self.attn1.backward(&x, s);
        s.recycle(x);
        let x = self.embed_act3.backward(&y, s);
        s.recycle(y);
        let y = self.embed3.backward(&x, s);
        s.recycle(x);
        let x = self.embed_act2.backward(&y, s);
        s.recycle(y);
        let y = self.embed2.backward(&x, s);
        s.recycle(x);
        let x = self.embed_act1.backward(&y, s);
        s.recycle(y);
        let y = self.embed1.backward(&x, s);
        s.recycle(x);
        s.recycle(y);
        self.cache = Some(cache);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.embed1.params_mut());
        params.extend(self.embed2.params_mut());
        params.extend(self.embed3.params_mut());
        params.extend(self.attn1.params_mut());
        params.extend(self.attn2.params_mut());
        params.extend(self.host_head1.params_mut());
        params.extend(self.host_head2.params_mut());
        params.extend(self.server_head1.params_mut());
        params.extend(self.server_head2.params_mut());
        params.extend(self.plc_head1.params_mut());
        params.extend(self.plc_head2.params_mut());
        params.extend(self.noact_head1.params_mut());
        params.extend(self.noact_head2.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NodeFeatureEncoder;
    use dbn::learn::{learn_model, LearnConfig};
    use dbn::DbnFilter;
    use ics_net::TopologySpec;
    use ics_sim::{IcsEnvironment, SimConfig};

    fn features_for(spec: &TopologySpec, seed: u64) -> (StateFeatures, ActionSpace) {
        let sim = SimConfig {
            topology: spec.clone(),
            ..SimConfig::tiny()
        }
        .with_max_time(60)
        .with_seed(seed);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed,
            sim: sim.clone(),
        });
        let mut env = IcsEnvironment::new(sim);
        let obs = env.reset();
        let encoder = NodeFeatureEncoder::new(env.topology());
        let filter = DbnFilter::new(model, env.topology().node_count());
        let space = ActionSpace::new(env.topology());
        (encoder.encode(&obs, &filter), space)
    }

    use crate::agent::test_states::episode_states;

    #[test]
    fn batched_q_values_are_bit_identical_to_solo_forwards() {
        let (states, space) = episode_states(9, 3);
        let mut net = AttentionQNet::new(space, 5);
        // Solo answers first, then the batch — and again in the other order,
        // so neither path depends on residue from the other.
        let solo: Vec<Vec<f32>> = states.iter().map(|f| net.q_values(f)).collect();
        let refs: Vec<&StateFeatures> = states.iter().collect();
        let batched = net.q_values_batch(&refs);
        assert_eq!(solo, batched, "batched Q-values diverged from solo");
        let again: Vec<Vec<f32>> = states.iter().map(|f| net.q_values(f)).collect();
        assert_eq!(solo, again);
        // Not all states are identical, so the equality above is meaningful.
        assert!(solo.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn batched_inference_does_not_clobber_the_training_cache() {
        let (states, space) = episode_states(4, 7);
        let make_grad = |len: usize| {
            let mut g = vec![0.0f32; len];
            g[2] = 1.0;
            g[0] = -0.5;
            g
        };

        let mut reference = AttentionQNet::new(space.clone(), 11);
        let q = reference.q_values(&states[0]);
        reference.zero_grad();
        reference.backward(&make_grad(q.len()));

        let mut interleaved = AttentionQNet::new(space, 11);
        let q = interleaved.q_values(&states[0]);
        let refs: Vec<&StateFeatures> = states.iter().collect();
        let _ = interleaved.q_values_batch(&refs);
        interleaved.zero_grad();
        interleaved.backward(&make_grad(q.len()));

        for (a, b) in reference
            .params_mut()
            .iter()
            .zip(interleaved.params_mut().iter())
        {
            assert_eq!(a.grad.data(), b.grad.data(), "training gradients diverged");
        }
    }

    #[test]
    fn q_output_covers_the_action_space_and_is_bounded() {
        let (features, space) = features_for(&TopologySpec::tiny(), 1);
        let mut net = AttentionQNet::new(space.clone(), 0);
        let q = net.q_values(&features);
        assert_eq!(q.len(), space.len());
        assert!(
            q.iter().all(|v| v.abs() <= 1.0),
            "tanh heads bound Q values"
        );
        assert_eq!(net.action_space().len(), space.len());
    }

    #[test]
    fn parameter_count_is_independent_of_network_size() {
        let (_, small_space) = features_for(&TopologySpec::tiny(), 2);
        let (_, large_space) = features_for(&TopologySpec::paper_small(), 3);
        let mut small = AttentionQNet::new(small_space, 0);
        let mut large = AttentionQNet::new(large_space, 0);
        assert_eq!(small.parameter_count(), large.parameter_count());
        // Comfortably under a million parameters.
        assert!(small.parameter_count() < 1_000_000);
    }

    #[test]
    fn backward_accumulates_gradients_for_selected_action() {
        let (features, space) = features_for(&TopologySpec::tiny(), 4);
        let mut net = AttentionQNet::new(space.clone(), 7);
        let q = net.q_values(&features);
        let mut grad = vec![0.0f32; q.len()];
        grad[3] = 1.0; // some per-node action
        grad[0] = 0.5; // the no-action value
        net.zero_grad();
        net.backward(&grad);
        let total_grad: f32 = net.params_mut().iter().map(|p| p.grad.norm()).sum();
        assert!(
            total_grad > 0.0,
            "backward should produce non-zero gradients"
        );
    }

    #[test]
    fn training_step_reduces_td_error_on_a_fixed_target() {
        let (features, space) = features_for(&TopologySpec::tiny(), 5);
        let mut net = AttentionQNet::new(space.clone(), 11);
        let mut opt = neural::optim::Adam::new(1e-3);
        let action = 2usize;
        let target = 0.7f32;
        let initial_error = (net.q_values(&features)[action] - target).abs();
        for _ in 0..60 {
            let q = net.q_values(&features);
            let mut grad = vec![0.0f32; q.len()];
            grad[action] = q[action] - target;
            net.zero_grad();
            net.backward(&grad);
            opt.step(&mut net.params_mut());
        }
        let final_error = (net.q_values(&features)[action] - target).abs();
        assert!(
            final_error < initial_error * 0.5,
            "TD error did not shrink: {initial_error} -> {final_error}"
        );
    }

    #[test]
    fn target_network_copy_matches_online_outputs() {
        let (features, space) = features_for(&TopologySpec::tiny(), 6);
        let mut online = AttentionQNet::new(space.clone(), 1);
        let mut target = AttentionQNet::new(space, 2);
        let q_online = online.q_values(&features);
        let q_target_before = target.q_values(&features);
        assert_ne!(q_online, q_target_before);
        target.copy_params_from(&mut online);
        let q_target_after = target.q_values(&features);
        for (a, b) in q_online.iter().zip(&q_target_after) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
