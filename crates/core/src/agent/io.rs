//! Saving and loading trained network weights.
//!
//! A trained defender is only useful if it can be deployed without retraining,
//! so the agent's parameters can be written to a small self-describing binary
//! file (magic, version, per-parameter shapes, little-endian `f32` data) and
//! read back into any network of the same architecture.

use crate::agent::QNetwork;
use neural::Matrix;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ACSOWTS\0";

/// Version of the on-disk weights format this build reads and writes.
///
/// Serving-layer policy handles echo this number so clients can tell which
/// artefact format a loaded policy round-trips through; bump it only with a
/// migration path for existing weight files.
pub const FORMAT_VERSION: u32 = 1;

const VERSION: u32 = FORMAT_VERSION;

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Serialises every parameter of a network to a writer.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn save_weights_to<W: Write>(network: &mut dyn QNetwork, writer: &mut W) -> io::Result<()> {
    let params = network.params_mut();
    writer.write_all(MAGIC)?;
    write_u32(writer, VERSION)?;
    write_u32(writer, params.len() as u32)?;
    for p in params {
        write_u32(writer, p.value.rows() as u32)?;
        write_u32(writer, p.value.cols() as u32)?;
        for v in p.value.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores every parameter of a network from a reader produced by
/// [`save_weights_to`]. The network must have the same architecture (same
/// number of parameters with the same shapes, in the same order).
///
/// # Errors
///
/// Returns an error if the header is unrecognised, the parameter count or any
/// shape differs from the target network, or the underlying reader fails.
pub fn load_weights_from<R: Read>(network: &mut dyn QNetwork, reader: &mut R) -> io::Result<()> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("not an ACSO weights file: magic bytes {magic:02x?}, expected {MAGIC:02x?}"),
        ));
    }
    let version = read_u32(reader)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported weights version {version}, expected {VERSION}"),
        ));
    }
    let count = read_u32(reader)? as usize;
    let mut params = network.params_mut();
    if count != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "weights file has {count} parameters but the network has {}",
                params.len()
            ),
        ));
    }
    for p in params.iter_mut() {
        let rows = read_u32(reader)? as usize;
        let cols = read_u32(reader)? as usize;
        if (rows, cols) != p.value.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter shape mismatch: file has {rows}x{cols}, network expects {}x{}",
                    p.value.rows(),
                    p.value.cols()
                ),
            ));
        }
        let mut data = vec![0.0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            reader.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        p.value = Matrix::from_vec(rows, cols, data);
    }
    Ok(())
}

/// Saves a network's weights to a file.
///
/// # Errors
///
/// Returns any error from creating or writing the file.
pub fn save_weights<P: AsRef<Path>>(network: &mut dyn QNetwork, path: P) -> io::Result<()> {
    let mut file = File::create(path)?;
    save_weights_to(network, &mut file)
}

/// Loads a network's weights from a file written by [`save_weights`].
///
/// # Errors
///
/// Returns any error from opening or parsing the file (see
/// [`load_weights_from`]).
pub fn load_weights<P: AsRef<Path>>(network: &mut dyn QNetwork, path: P) -> io::Result<()> {
    let mut file = File::open(path)?;
    load_weights_from(network, &mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AttentionQNet, BaselineConvQNet};
    use crate::features::{NodeFeatureEncoder, StateFeatures};
    use crate::ActionSpace;
    use dbn::learn::{learn_model, LearnConfig};
    use dbn::DbnFilter;
    use ics_sim::{IcsEnvironment, SimConfig};

    fn features() -> (StateFeatures, ActionSpace) {
        let sim = SimConfig::tiny().with_max_time(50);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed: 0,
            sim: sim.clone(),
        });
        let mut env = IcsEnvironment::new(sim);
        let obs = env.reset();
        let encoder = NodeFeatureEncoder::new(env.topology());
        let filter = DbnFilter::new(model, env.topology().node_count());
        (
            encoder.encode(&obs, &filter),
            ActionSpace::new(env.topology()),
        )
    }

    #[test]
    fn weights_round_trip_through_a_buffer() {
        let (features, space) = features();
        let mut original = AttentionQNet::new(space.clone(), 13);
        let mut restored = AttentionQNet::new(space, 99);
        let q_original = original.q_values(&features);
        assert_ne!(q_original, restored.q_values(&features));

        let mut buffer = Vec::new();
        save_weights_to(&mut original, &mut buffer).unwrap();
        load_weights_from(&mut restored, &mut buffer.as_slice()).unwrap();

        let q_restored = restored.q_values(&features);
        for (a, b) in q_original.iter().zip(&q_restored) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn weights_round_trip_through_a_file() {
        let (features, space) = features();
        let mut original = AttentionQNet::new(space.clone(), 5);
        let path = std::env::temp_dir().join("acso_weights_round_trip_test.bin");
        save_weights(&mut original, &path).unwrap();
        let mut restored = AttentionQNet::new(space, 6);
        load_weights(&mut restored, &path).unwrap();
        assert_eq!(original.q_values(&features), restored.q_values(&features));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn baseline_weights_round_trip_through_buffer_and_file() {
        let (features, space) = features();
        let mut original = BaselineConvQNet::new(space.clone(), 21);
        let q_original = original.q_values(&features);

        // Buffer round trip.
        let mut buffer = Vec::new();
        save_weights_to(&mut original, &mut buffer).unwrap();
        let mut restored = BaselineConvQNet::new(space.clone(), 22);
        assert_ne!(q_original, restored.q_values(&features));
        load_weights_from(&mut restored, &mut buffer.as_slice()).unwrap();
        assert_eq!(q_original, restored.q_values(&features));

        // File round trip.
        let path = std::env::temp_dir().join("acso_baseline_weights_round_trip_test.bin");
        save_weights(&mut original, &path).unwrap();
        let mut from_file = BaselineConvQNet::new(space, 23);
        load_weights(&mut from_file, &path).unwrap();
        assert_eq!(q_original, from_file.q_values(&features));
        let _ = std::fs::remove_file(path);
    }

    /// Golden header test: the on-disk prefix (magic, version, parameter
    /// count) is a compatibility contract — deployed weight files must stay
    /// loadable — so its exact bytes are pinned here for both architectures.
    #[test]
    fn serialized_header_bytes_are_pinned() {
        let (_, space) = features();
        let golden = |count: u32| {
            let mut expected = b"ACSOWTS\0".to_vec();
            expected.extend_from_slice(&1u32.to_le_bytes()); // version
            expected.extend_from_slice(&count.to_le_bytes()); // parameter count
            expected
        };

        // The attention net's 13 weight/bias-carrying stages yield 30
        // parameter tensors; the baseline MLP's 3 dense layers yield 6. The
        // body is the shape table plus the values: 8 bytes of shape and 4
        // bytes per scalar for every parameter.
        let body_len = |net: &mut dyn QNetwork| -> usize {
            net.params_mut().iter().map(|p| 8 + 4 * p.value.len()).sum()
        };

        let mut attention = AttentionQNet::new(space.clone(), 1);
        let mut buffer = Vec::new();
        save_weights_to(&mut attention, &mut buffer).unwrap();
        assert_eq!(&buffer[..16], &golden(30)[..], "attention header changed");
        assert_eq!(buffer.len(), 16 + body_len(&mut attention));

        let mut baseline = BaselineConvQNet::new(space, 1);
        let mut buffer = Vec::new();
        save_weights_to(&mut baseline, &mut buffer).unwrap();
        assert_eq!(&buffer[..16], &golden(6)[..], "baseline header changed");
        assert_eq!(buffer.len(), 16 + body_len(&mut baseline));
    }

    /// The version error names both the found and the expected version: a
    /// node running older code against a newer artefact should be
    /// diagnosable from the message alone. The exact string is pinned.
    #[test]
    fn unsupported_version_is_rejected() {
        let (_, space) = features();
        let mut net = AttentionQNet::new(space, 1);
        let mut buffer = Vec::new();
        save_weights_to(&mut net, &mut buffer).unwrap();
        // Bump the version field (bytes 8..12).
        buffer[8] = 9;
        let err = load_weights_from(&mut net, &mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(err.to_string(), "unsupported weights version 9, expected 1");
    }

    #[test]
    fn corrupt_or_mismatched_files_are_rejected() {
        let (_, space) = features();
        let mut net = AttentionQNet::new(space.clone(), 1);

        // Wrong magic: the message shows the bytes found and the bytes
        // expected (pinned — operators diagnose mixed-up artefacts from it).
        let err = load_weights_from(&mut net, &mut &b"NOTRIGHT........"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(
            err.to_string(),
            "not an ACSO weights file: magic bytes [4e, 4f, 54, 52, 49, 47, 48, 54], \
             expected [41, 43, 53, 4f, 57, 54, 53, 00]"
        );

        // Architecture mismatch: weights from the baseline network cannot be
        // loaded into the attention network.
        let mut baseline = BaselineConvQNet::new(space, 2);
        let mut buffer = Vec::new();
        save_weights_to(&mut baseline, &mut buffer).unwrap();
        let err = load_weights_from(&mut net, &mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncated file.
        let mut ok_buffer = Vec::new();
        save_weights_to(&mut net, &mut ok_buffer).unwrap();
        ok_buffer.truncate(ok_buffer.len() / 2);
        assert!(load_weights_from(&mut net, &mut ok_buffer.as_slice()).is_err());
    }
}
