//! The baseline Q-network used for the architecture comparison (Table 7).
//!
//! The paper's baseline is a 1-D convolutional network over the observation
//! history whose flattened input (and therefore parameter count) grows with
//! the number of nodes on the network. This reproduction feeds both
//! architectures the DBN belief state (which already summarises history), so
//! the baseline is realised as a fully-connected network over the flattened
//! per-node features — preserving the property under comparison: its
//! parameter count scales linearly with the size of the network, unlike the
//! attention architecture.

use crate::actions::ActionSpace;
use crate::agent::QNetwork;
use crate::features::{StateFeatures, NODE_FEATURE_DIM, PLC_FEATURE_DIM, PLC_SUMMARY_DIM};
use neural::layers::{Activation, Dense};
use neural::{Layer, Matrix, Param};

const HIDDEN1: usize = 256;
const HIDDEN2: usize = 128;

/// The flattened fully-connected baseline Q-network.
#[derive(Debug, Clone)]
pub struct BaselineConvQNet {
    action_space: ActionSpace,
    input_dim: usize,
    fc1: Dense,
    act1: Activation,
    fc2: Dense,
    act2: Activation,
    fc3: Dense,
    out: Activation,
}

impl BaselineConvQNet {
    /// Builds the baseline network for a fixed topology size.
    pub fn new(action_space: ActionSpace, seed: u64) -> Self {
        let input_dim = action_space.node_count() * NODE_FEATURE_DIM
            + action_space.plc_count() * PLC_FEATURE_DIM
            + PLC_SUMMARY_DIM;
        Self {
            fc1: Dense::new(input_dim, HIDDEN1, seed.wrapping_add(1)),
            act1: Activation::leaky_relu(),
            fc2: Dense::new(HIDDEN1, HIDDEN2, seed.wrapping_add(2)),
            act2: Activation::leaky_relu(),
            fc3: Dense::new(HIDDEN2, action_space.len(), seed.wrapping_add(3)),
            out: Activation::tanh(),
            input_dim,
            action_space,
        }
    }

    /// The flattened input dimension (grows with the network size).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The action space the output covers.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    fn flatten(&self, features: &StateFeatures) -> Matrix {
        let mut data = Vec::with_capacity(self.input_dim);
        data.extend_from_slice(features.nodes.data());
        data.extend_from_slice(features.plcs.data());
        data.extend_from_slice(features.plc_summary.data());
        data.resize(self.input_dim, 0.0);
        Matrix::from_vec(1, self.input_dim, data)
    }
}

impl QNetwork for BaselineConvQNet {
    fn q_values(&mut self, features: &StateFeatures) -> Vec<f32> {
        let x = self.flatten(features);
        let x = self.act1.forward(&self.fc1.forward(&x));
        let x = self.act2.forward(&self.fc2.forward(&x));
        let q = self.out.forward(&self.fc3.forward(&x));
        q.row(0).to_vec()
    }

    fn backward(&mut self, grad_q: &[f32]) {
        assert_eq!(
            grad_q.len(),
            self.action_space.len(),
            "gradient length mismatch"
        );
        let grad = Matrix::row_vector(grad_q);
        let g = self.out.backward(&grad);
        let g = self.fc3.backward(&g);
        let g = self.act2.backward(&g);
        let g = self.fc2.backward(&g);
        let g = self.act1.backward(&g);
        let _ = self.fc1.backward(&g);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.fc1.params_mut());
        params.extend(self.fc2.params_mut());
        params.extend(self.fc3.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AttentionQNet;
    use crate::features::NodeFeatureEncoder;
    use dbn::learn::{learn_model, LearnConfig};
    use dbn::DbnFilter;
    use ics_net::TopologySpec;
    use ics_sim::{IcsEnvironment, SimConfig};

    fn features_for(spec: &TopologySpec, seed: u64) -> (StateFeatures, ActionSpace) {
        let sim = SimConfig {
            topology: spec.clone(),
            ..SimConfig::tiny()
        }
        .with_max_time(60)
        .with_seed(seed);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed,
            sim: sim.clone(),
        });
        let mut env = IcsEnvironment::new(sim);
        let obs = env.reset();
        let encoder = NodeFeatureEncoder::new(env.topology());
        let filter = DbnFilter::new(model, env.topology().node_count());
        let space = ActionSpace::new(env.topology());
        (encoder.encode(&obs, &filter), space)
    }

    #[test]
    fn outputs_cover_action_space() {
        let (features, space) = features_for(&TopologySpec::tiny(), 1);
        let mut net = BaselineConvQNet::new(space.clone(), 0);
        let q = net.q_values(&features);
        assert_eq!(q.len(), space.len());
        assert!(q.iter().all(|v| v.abs() <= 1.0));
        assert_eq!(net.action_space().len(), space.len());
    }

    #[test]
    fn parameter_count_grows_with_network_size_unlike_attention() {
        let (_, small_space) = features_for(&TopologySpec::tiny(), 2);
        let (_, large_space) = features_for(&TopologySpec::paper_small(), 3);
        let mut small = BaselineConvQNet::new(small_space.clone(), 0);
        let mut large = BaselineConvQNet::new(large_space.clone(), 0);
        assert!(large.parameter_count() > small.parameter_count());
        assert!(large.input_dim() > small.input_dim());

        // The attention architecture stays constant over the same change —
        // the comparison Table 7 is making.
        let mut attn_small = AttentionQNet::new(small_space, 0);
        let mut attn_large = AttentionQNet::new(large_space, 0);
        assert_eq!(attn_small.parameter_count(), attn_large.parameter_count());
    }

    #[test]
    fn gradients_flow_through_backward() {
        let (features, space) = features_for(&TopologySpec::tiny(), 4);
        let mut net = BaselineConvQNet::new(space, 5);
        let q = net.q_values(&features);
        let mut grad = vec![0.0; q.len()];
        grad[1] = 1.0;
        net.zero_grad();
        net.backward(&grad);
        let total: f32 = net.params_mut().iter().map(|p| p.grad.norm()).sum();
        assert!(total > 0.0);
    }
}
