//! The baseline Q-network used for the architecture comparison (Table 7).
//!
//! The paper's baseline is a 1-D convolutional network over the observation
//! history whose flattened input (and therefore parameter count) grows with
//! the number of nodes on the network. This reproduction feeds both
//! architectures the DBN belief state (which already summarises history), so
//! the baseline is realised as a fully-connected network over the flattened
//! per-node features — preserving the property under comparison: its
//! parameter count scales linearly with the size of the network, unlike the
//! attention architecture.

use crate::actions::ActionSpace;
use crate::agent::QNetwork;
use crate::features::{StateFeatures, NODE_FEATURE_DIM, PLC_FEATURE_DIM, PLC_SUMMARY_DIM};
use neural::layers::{Activation, Dense};
use neural::{Batch, Layer, Matrix, Param, Scratch};

const HIDDEN1: usize = 256;
const HIDDEN2: usize = 128;

/// The flattened fully-connected baseline Q-network.
#[derive(Debug, Clone)]
pub struct BaselineConvQNet {
    action_space: ActionSpace,
    input_dim: usize,
    fc1: Dense,
    act1: Activation,
    fc2: Dense,
    act2: Activation,
    fc3: Dense,
    out: Activation,
    scratch: Scratch,
}

impl BaselineConvQNet {
    /// Builds the baseline network for a fixed topology size.
    pub fn new(action_space: ActionSpace, seed: u64) -> Self {
        let input_dim = action_space.node_count() * NODE_FEATURE_DIM
            + action_space.plc_count() * PLC_FEATURE_DIM
            + PLC_SUMMARY_DIM;
        Self {
            fc1: Dense::new(input_dim, HIDDEN1, seed.wrapping_add(1)),
            act1: Activation::leaky_relu(),
            fc2: Dense::new(HIDDEN1, HIDDEN2, seed.wrapping_add(2)),
            act2: Activation::leaky_relu(),
            fc3: Dense::new(HIDDEN2, action_space.len(), seed.wrapping_add(3)),
            out: Activation::tanh(),
            input_dim,
            action_space,
            scratch: Scratch::new(),
        }
    }

    /// The flattened input dimension (grows with the network size).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The action space the output covers.
    pub fn action_space(&self) -> &ActionSpace {
        &self.action_space
    }

    /// Pins every subsequent pass of this network to a specific kernel
    /// backend by swapping the internal scratch pool (see
    /// [`neural::backend`]). The default is the process-wide backend.
    pub fn set_kernel_backend(&mut self, backend: neural::backend::BackendRef) {
        self.scratch = Scratch::with_backend(backend);
    }

    /// The kernel backend this network's passes dispatch to.
    pub fn kernel_backend(&self) -> neural::backend::BackendRef {
        self.scratch.backend()
    }

    /// Writes one state's flattened features into row `row` of `out`.
    fn flatten_into(&self, features: &StateFeatures, out: &mut Matrix, row: usize) {
        let dst = out.row_mut(row);
        let mut at = 0;
        for src in [
            features.nodes.data(),
            features.plcs.data(),
            features.plc_summary.data(),
        ] {
            dst[at..at + src.len()].copy_from_slice(src);
            at += src.len();
        }
        dst[at..].fill(0.0);
    }

    /// Backward through the MLP for a `[rows, action-space]` gradient (one
    /// row per state of the most recent cached forward).
    fn backward_rows(&mut self, grad: Matrix) {
        let s = &mut self.scratch;
        let x = self.out.backward(&grad, s);
        s.recycle(grad);
        let y = self.fc3.backward(&x, s);
        s.recycle(x);
        let x = self.act2.backward(&y, s);
        s.recycle(y);
        let y = self.fc2.backward(&x, s);
        s.recycle(x);
        let x = self.act1.backward(&y, s);
        s.recycle(y);
        let y = self.fc1.backward(&x, s);
        s.recycle(x);
        s.recycle(y);
    }

    /// Runs the MLP over a pre-flattened `[batch, input_dim]` matrix.
    fn forward_rows(&mut self, x: Matrix) -> Matrix {
        let s = &mut self.scratch;
        let y = self.fc1.forward(&x, s);
        s.recycle(x);
        let x = self.act1.forward(&y, s);
        s.recycle(y);
        let y = self.fc2.forward(&x, s);
        s.recycle(x);
        let x = self.act2.forward(&y, s);
        s.recycle(y);
        let y = self.fc3.forward(&x, s);
        s.recycle(x);
        let q = self.out.forward(&y, s);
        s.recycle(y);
        q
    }
}

impl QNetwork for BaselineConvQNet {
    /// Batched inference: all states are flattened into one `[batch,
    /// input_dim]` matrix and pushed through a single matmul chain — 64
    /// states cost one matmul chain rather than 64 single-row passes. Runs
    /// through the layers' `forward_batch` path, so each state's values are
    /// bit-identical to a solo [`BaselineConvQNet::q_values`] call and the
    /// training cache is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if any state's flattened width does not exactly fill the
    /// network's fixed input (the flattened baseline is built for one
    /// topology; silently zero-padding a smaller state would produce
    /// plausible-looking Q-values for the wrong action space).
    fn q_values_batch(&mut self, features: &[&StateFeatures]) -> Vec<Vec<f32>> {
        if features.is_empty() {
            return Vec::new();
        }
        for f in features {
            let flattened = f.nodes.len() + f.plcs.len() + f.plc_summary.len();
            assert_eq!(
                flattened, self.input_dim,
                "batched states must match the network's topology"
            );
        }
        let mut x = Batch::take(&mut self.scratch, features.len(), 1, self.input_dim);
        for (row, f) in features.iter().enumerate() {
            self.flatten_into(f, x.matrix_mut(), row);
        }
        let s = &mut self.scratch;
        let y = self.fc1.forward_batch(&x, s);
        s.recycle(x.into_matrix());
        let x = self.act1.forward_batch(&y, s);
        s.recycle(y.into_matrix());
        let y = self.fc2.forward_batch(&x, s);
        s.recycle(x.into_matrix());
        let x = self.act2.forward_batch(&y, s);
        s.recycle(y.into_matrix());
        let y = self.fc3.forward_batch(&x, s);
        s.recycle(x.into_matrix());
        let q = self.out.forward_batch(&y, s);
        s.recycle(y.into_matrix());
        let out = (0..features.len())
            .map(|i| q.matrix().row(i).to_vec())
            .collect();
        s.recycle(q.into_matrix());
        out
    }

    /// Cached single-state forward: the training path, whose intermediates
    /// feed [`BaselineConvQNet::backward`].
    fn q_values(&mut self, features: &StateFeatures) -> Vec<f32> {
        let mut x = self.scratch.take(1, self.input_dim);
        self.flatten_into(features, &mut x, 0);
        let q = self.forward_rows(x);
        let out = q.row(0).to_vec();
        self.scratch.recycle(q);
        out
    }

    fn backward(&mut self, grad_q: &[f32]) {
        assert_eq!(
            grad_q.len(),
            self.action_space.len(),
            "gradient length mismatch"
        );
        let mut grad = self.scratch.take(1, grad_q.len());
        grad.row_mut(0).copy_from_slice(grad_q);
        self.backward_rows(grad);
    }

    /// The batched training path: every layer of the MLP is row-wise, so the
    /// whole minibatch runs through the *cached* solo forward on one
    /// `[batch, input_dim]` stacked matrix — per-state values bit-identical
    /// to solo calls, and the cached inputs are exactly the stacked batch
    /// caches [`BaselineConvQNet::backward_batch`] consumes.
    fn q_values_batch_train(&mut self, features: &[&StateFeatures]) -> Vec<Vec<f32>> {
        if features.is_empty() {
            return Vec::new();
        }
        for f in features {
            let flattened = f.nodes.len() + f.plcs.len() + f.plc_summary.len();
            assert_eq!(
                flattened, self.input_dim,
                "batched states must match the network's topology"
            );
        }
        let mut x = self.scratch.take(features.len(), self.input_dim);
        for (row, f) in features.iter().enumerate() {
            self.flatten_into(f, &mut x, row);
        }
        let q = self.forward_rows(x);
        let out = (0..features.len()).map(|i| q.row(i).to_vec()).collect();
        self.scratch.recycle(q);
        out
    }

    /// One stacked backward matmul chain for the whole minibatch. Each
    /// state contributes a single row, so the tiled kernels' ascending-`k`
    /// accumulation reproduces the serial per-sample gradient sum bit for
    /// bit.
    fn backward_batch(&mut self, grad_q: &Matrix) {
        assert_eq!(
            grad_q.cols(),
            self.action_space.len(),
            "gradient width mismatch"
        );
        let grad = self.scratch.take_copy(grad_q);
        self.backward_rows(grad);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        params.extend(self.fc1.params_mut());
        params.extend(self.fc2.params_mut());
        params.extend(self.fc3.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AttentionQNet;
    use crate::features::NodeFeatureEncoder;
    use dbn::learn::{learn_model, LearnConfig};
    use dbn::DbnFilter;
    use ics_net::TopologySpec;
    use ics_sim::{IcsEnvironment, SimConfig};

    fn features_for(spec: &TopologySpec, seed: u64) -> (StateFeatures, ActionSpace) {
        let sim = SimConfig {
            topology: spec.clone(),
            ..SimConfig::tiny()
        }
        .with_max_time(60)
        .with_seed(seed);
        let model = learn_model(&LearnConfig {
            episodes: 1,
            seed,
            sim: sim.clone(),
        });
        let mut env = IcsEnvironment::new(sim);
        let obs = env.reset();
        let encoder = NodeFeatureEncoder::new(env.topology());
        let filter = DbnFilter::new(model, env.topology().node_count());
        let space = ActionSpace::new(env.topology());
        (encoder.encode(&obs, &filter), space)
    }

    #[test]
    fn outputs_cover_action_space() {
        let (features, space) = features_for(&TopologySpec::tiny(), 1);
        let mut net = BaselineConvQNet::new(space.clone(), 0);
        let q = net.q_values(&features);
        assert_eq!(q.len(), space.len());
        assert!(q.iter().all(|v| v.abs() <= 1.0));
        assert_eq!(net.action_space().len(), space.len());
    }

    #[test]
    fn parameter_count_grows_with_network_size_unlike_attention() {
        let (_, small_space) = features_for(&TopologySpec::tiny(), 2);
        let (_, large_space) = features_for(&TopologySpec::paper_small(), 3);
        let mut small = BaselineConvQNet::new(small_space.clone(), 0);
        let mut large = BaselineConvQNet::new(large_space.clone(), 0);
        assert!(large.parameter_count() > small.parameter_count());
        assert!(large.input_dim() > small.input_dim());

        // The attention architecture stays constant over the same change —
        // the comparison Table 7 is making.
        let mut attn_small = AttentionQNet::new(small_space, 0);
        let mut attn_large = AttentionQNet::new(large_space, 0);
        assert_eq!(attn_small.parameter_count(), attn_large.parameter_count());
    }

    #[test]
    fn batched_q_values_are_bit_identical_to_solo_forwards() {
        let (states, space) = crate::agent::test_states::episode_states(8, 9);
        let mut net = BaselineConvQNet::new(space, 4);
        let solo: Vec<Vec<f32>> = states.iter().map(|f| net.q_values(f)).collect();
        let refs: Vec<&StateFeatures> = states.iter().collect();
        let batched = net.q_values_batch(&refs);
        assert_eq!(solo, batched, "batched Q-values diverged from solo");
        assert!(solo.windows(2).any(|w| w[0] != w[1]));
        assert!(net.q_values_batch(&[]).is_empty());
    }

    #[test]
    fn gradients_flow_through_backward() {
        let (features, space) = features_for(&TopologySpec::tiny(), 4);
        let mut net = BaselineConvQNet::new(space, 5);
        let q = net.q_values(&features);
        let mut grad = vec![0.0; q.len()];
        grad[1] = 1.0;
        net.zero_grad();
        net.backward(&grad);
        let total: f32 = net.params_mut().iter().map(|p| p.grad.norm()).sum();
        assert!(total > 0.0);
    }
}
