//! The evaluation protocol: run a defender policy for many episodes and
//! aggregate the paper's four metrics (Table 2).

use crate::policy::DefenderPolicy;
use ics_sim::metrics::{EpisodeMetrics, EvaluationSummary};
use ics_sim::{IcsEnvironment, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of an evaluation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Simulation configuration (topology, attacker profile, horizon).
    pub sim: SimConfig,
    /// Number of attack episodes to run (the paper uses 100).
    pub episodes: usize,
    /// Base seed; episode `i` uses `seed + i` so runs are reproducible and
    /// every policy sees the same sequence of attack scenarios.
    pub seed: u64,
}

impl EvalConfig {
    /// The paper's evaluation protocol: the full network and 100 episodes.
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::full(),
            episodes: 100,
            seed: 0,
        }
    }

    /// A reduced protocol for quick runs: the small (§4.2) network, shorter
    /// episodes, fewer trials.
    pub fn quick() -> Self {
        Self {
            sim: SimConfig::small().with_max_time(2_000),
            episodes: 10,
            seed: 0,
        }
    }
}

/// Per-episode metrics plus their aggregate for one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Name of the evaluated policy.
    pub policy: String,
    /// Per-episode metrics.
    pub episodes: Vec<EpisodeMetrics>,
    /// Aggregate over the episodes (one row of Table 2).
    pub summary: EvaluationSummary,
}

/// Runs a policy through the evaluation protocol and returns per-episode
/// metrics and their aggregate.
pub fn evaluate_policy_detailed(
    policy: &mut dyn DefenderPolicy,
    config: &EvalConfig,
) -> PolicyEvaluation {
    let mut episodes = Vec::with_capacity(config.episodes);
    for i in 0..config.episodes {
        let sim = config
            .sim
            .clone()
            .with_seed(config.seed.wrapping_add(i as u64));
        let mut env = IcsEnvironment::new(sim);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(10_000 + i as u64));
        policy.reset(env.topology());
        let metrics = {
            let policy_ref: &mut dyn DefenderPolicy = policy;
            env.run_episode(|obs, env| policy_ref.decide(obs, env.topology(), &mut rng))
        };
        episodes.push(metrics);
    }
    let summary = EvaluationSummary::from_episodes(&episodes);
    PolicyEvaluation {
        policy: policy.name().to_string(),
        episodes,
        summary,
    }
}

/// Runs a policy through the evaluation protocol and returns the aggregate
/// metrics (one row of Table 2).
pub fn evaluate_policy(policy: &mut dyn DefenderPolicy, config: &EvalConfig) -> EvaluationSummary {
    evaluate_policy_detailed(policy, config).summary
}

/// Formats a set of policy evaluations as an aligned text table in the layout
/// of Table 2.
pub fn format_table(evaluations: &[PolicyEvaluation]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>22} {:>20} {:>18} {:>26}\n",
        "Policy", "Discounted Return", "Final PLCs Offline", "Avg IT Cost", "Avg Nodes Compromised"
    ));
    for eval in evaluations {
        let s = &eval.summary;
        out.push_str(&format!(
            "{:<14} {:>12.1} ± {:<6.1} {:>12.2} ± {:<4.2} {:>11.3} ± {:<4.3} {:>17.2} ± {:<4.2}\n",
            eval.policy,
            s.discounted_return.mean,
            s.discounted_return.std_err,
            s.final_plcs_offline.mean,
            s.final_plcs_offline.std_err,
            s.average_it_cost.mean,
            s.average_it_cost.std_err,
            s.average_nodes_compromised.mean,
            s.average_nodes_compromised.std_err,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{PlaybookPolicy, SemiRandomPolicy};
    use crate::policy::NullPolicy;

    fn tiny_eval(episodes: usize) -> EvalConfig {
        EvalConfig {
            sim: SimConfig::tiny().with_max_time(150),
            episodes,
            seed: 11,
        }
    }

    #[test]
    fn evaluation_is_reproducible() {
        let cfg = tiny_eval(2);
        let a = evaluate_policy(&mut PlaybookPolicy::new(), &cfg);
        let b = evaluate_policy(&mut PlaybookPolicy::new(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn random_policy_costs_more_than_doing_nothing() {
        let cfg = tiny_eval(2);
        let random = evaluate_policy(&mut SemiRandomPolicy::new(), &cfg);
        let null = evaluate_policy(&mut NullPolicy::new(), &cfg);
        assert!(random.average_it_cost.mean > null.average_it_cost.mean);
        assert_eq!(null.average_it_cost.mean, 0.0);
    }

    #[test]
    fn detailed_evaluation_reports_every_episode() {
        let cfg = tiny_eval(3);
        let eval = evaluate_policy_detailed(&mut PlaybookPolicy::new(), &cfg);
        assert_eq!(eval.episodes.len(), 3);
        assert_eq!(eval.summary.episodes, 3);
        assert_eq!(eval.policy, "Playbook");
    }

    #[test]
    fn table_formatting_contains_all_policies() {
        let cfg = tiny_eval(1);
        let evals = vec![
            evaluate_policy_detailed(&mut PlaybookPolicy::new(), &cfg),
            evaluate_policy_detailed(&mut NullPolicy::new(), &cfg),
        ];
        let table = format_table(&evals);
        assert!(table.contains("Playbook"));
        assert!(table.contains("No defense"));
        assert!(table.contains("Discounted Return"));
    }
}
