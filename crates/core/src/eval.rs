//! The evaluation protocol: run a defender policy for many episodes and
//! aggregate the paper's four metrics (Table 2).
//!
//! Episodes run through the [`crate::rollout`] engines. The policy-factory
//! entry points ([`evaluate_factory_detailed`]) fan episodes out over worker
//! threads with bit-identical results to the serial `&mut dyn` entry points,
//! which are kept for policies that cannot be constructed per worker. The
//! engine itself is *autoscaled*: the workload's shape (topology size,
//! action-space size, episode count) picks between the episode-parallel pool
//! and the lockstep [`SyncBatchEngine`] via [`acso_runtime::plan`], with the
//! `ACSO_BATCH` / `ACSO_THREADS` environment variables acting as overrides.
//! Every engine is pinned bit-identical to the serial evaluator, so the
//! choice can never change a transcript — only its wall-clock.

use crate::actions::ActionSpace;
use crate::policy::DefenderPolicy;
use crate::rollout::{self, RolloutPlan, SyncBatchEngine};
use acso_runtime::{EngineChoice, WorkloadShape};
use ics_sim::metrics::{EpisodeMetrics, EvaluationSummary};
use ics_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// Configuration of an evaluation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Simulation configuration (topology, attacker profile, horizon).
    pub sim: SimConfig,
    /// Number of attack episodes to run (the paper uses 100).
    pub episodes: usize,
    /// Base seed; episode `i` uses `seed ^ i` so runs are reproducible and
    /// every policy sees the same sequence of attack scenarios.
    pub seed: u64,
}

impl EvalConfig {
    /// The paper's evaluation protocol: the full network and 100 episodes.
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::full(),
            episodes: 100,
            seed: 0,
        }
    }

    /// A reduced protocol for quick runs: the small (§4.2) network, shorter
    /// episodes, fewer trials.
    pub fn quick() -> Self {
        Self {
            sim: SimConfig::small().with_max_time(2_000),
            episodes: 10,
            seed: 0,
        }
    }
}

/// Per-episode metrics plus their aggregate for one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// Name of the evaluated policy.
    pub policy: String,
    /// Per-episode metrics.
    pub episodes: Vec<EpisodeMetrics>,
    /// Aggregate over the episodes (one row of Table 2).
    pub summary: EvaluationSummary,
}

fn plan_for(config: &EvalConfig) -> RolloutPlan {
    RolloutPlan::new(config.sim.clone(), config.episodes, config.seed)
}

/// The autoscaler's view of an evaluation run: node count and action-space
/// size straight from the scenario's topology spec (no topology is built),
/// plus the episode count. Shared by the evaluator and the benchmark
/// harness so recorded plans match executed plans.
pub fn workload_shape(config: &EvalConfig) -> WorkloadShape {
    let nodes = config.sim.topology.total_nodes();
    WorkloadShape {
        nodes,
        actions: ActionSpace::from_counts(nodes, config.sim.topology.plcs).len(),
        episodes: config.episodes,
    }
}

fn package(policy: String, episodes: Vec<EpisodeMetrics>) -> PolicyEvaluation {
    let summary = EvaluationSummary::from_episodes(&episodes);
    PolicyEvaluation {
        policy,
        episodes,
        summary,
    }
}

/// Runs a policy through the evaluation protocol serially and returns
/// per-episode metrics and their aggregate.
///
/// Episode transcripts are identical to [`evaluate_factory_detailed`] with a
/// factory producing equivalent policies — both run through
/// [`rollout::run_episode`].
pub fn evaluate_policy_detailed(
    policy: &mut dyn DefenderPolicy,
    config: &EvalConfig,
) -> PolicyEvaluation {
    let episodes = rollout::rollout_serial(policy, &plan_for(config));
    package(policy.name().to_string(), episodes)
}

/// Runs the evaluation protocol with episodes fanned out over worker
/// threads, building one policy per worker with `make_policy`. The engine is
/// chosen by the autoscaler ([`acso_runtime::plan`]) from the workload's
/// shape: large topologies and wide action spaces route through the lockstep
/// [`SyncBatchEngine`] (batched inference), small ones through the
/// episode-parallel pool. `ACSO_BATCH` pins the engine and lane width,
/// `ACSO_THREADS` pins the worker count. Results are bit-identical to the
/// serial evaluator whichever engine runs.
pub fn evaluate_factory_detailed<F>(make_policy: F, config: &EvalConfig) -> PolicyEvaluation
where
    F: Fn() -> Box<dyn DefenderPolicy> + Sync,
{
    let name = make_policy().name().to_string();
    let auto = acso_runtime::plan(&workload_shape(config));
    let plan = plan_for(config).with_threads(auto.threads);
    let episodes = match auto.engine {
        EngineChoice::Lockstep { lanes } => {
            SyncBatchEngine::new(lanes).rollout(&plan, &make_policy)
        }
        EngineChoice::EpisodeParallel => rollout::rollout(&plan, make_policy),
    };
    package(name, episodes)
}

/// Aggregate-only variant of [`evaluate_factory_detailed`].
pub fn evaluate_factory<F>(make_policy: F, config: &EvalConfig) -> EvaluationSummary
where
    F: Fn() -> Box<dyn DefenderPolicy> + Sync,
{
    evaluate_factory_detailed(make_policy, config).summary
}

/// Runs a policy through the evaluation protocol and returns the aggregate
/// metrics (one row of Table 2).
pub fn evaluate_policy(policy: &mut dyn DefenderPolicy, config: &EvalConfig) -> EvaluationSummary {
    evaluate_policy_detailed(policy, config).summary
}

/// Formats a set of policy evaluations as an aligned text table in the layout
/// of Table 2.
pub fn format_table(evaluations: &[PolicyEvaluation]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>22} {:>20} {:>18} {:>26}\n",
        "Policy", "Discounted Return", "Final PLCs Offline", "Avg IT Cost", "Avg Nodes Compromised"
    ));
    for eval in evaluations {
        let s = &eval.summary;
        out.push_str(&format!(
            "{:<14} {:>12.1} ± {:<6.1} {:>12.2} ± {:<4.2} {:>11.3} ± {:<4.3} {:>17.2} ± {:<4.2}\n",
            eval.policy,
            s.discounted_return.mean,
            s.discounted_return.std_err,
            s.final_plcs_offline.mean,
            s.final_plcs_offline.std_err,
            s.average_it_cost.mean,
            s.average_it_cost.std_err,
            s.average_nodes_compromised.mean,
            s.average_nodes_compromised.std_err,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{PlaybookPolicy, SemiRandomPolicy};
    use crate::policy::NullPolicy;

    fn tiny_eval(episodes: usize) -> EvalConfig {
        EvalConfig {
            sim: SimConfig::tiny().with_max_time(150),
            episodes,
            seed: 11,
        }
    }

    #[test]
    fn evaluation_is_reproducible() {
        let cfg = tiny_eval(2);
        let a = evaluate_policy(&mut PlaybookPolicy::new(), &cfg);
        let b = evaluate_policy(&mut PlaybookPolicy::new(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn factory_evaluation_matches_serial_evaluation() {
        let cfg = tiny_eval(4);
        let serial = evaluate_policy_detailed(&mut PlaybookPolicy::new(), &cfg);
        let parallel = evaluate_factory_detailed(|| Box::new(PlaybookPolicy::new()), &cfg);
        assert_eq!(serial, parallel);
        assert_eq!(
            evaluate_factory(|| Box::new(PlaybookPolicy::new()), &cfg),
            serial.summary
        );
    }

    #[test]
    fn autoscaled_lockstep_matches_serial_on_large_topologies() {
        // Inflate the tiny scenario past the lockstep node threshold so the
        // autoscaler (no overrides set) picks the batched engine, and pin
        // its transcripts against the serial evaluator.
        let mut cfg = tiny_eval(3);
        cfg.sim.topology.l2_workstations = 200;
        cfg.sim.topology.host_budget = 256;
        cfg.sim = cfg.sim.clone().with_max_time(40);
        let shape = workload_shape(&cfg);
        assert!(shape.nodes >= acso_runtime::LOCKSTEP_NODE_THRESHOLD);
        assert_eq!(shape.episodes, 3);
        let serial = evaluate_policy_detailed(&mut PlaybookPolicy::new(), &cfg);
        let auto = evaluate_factory_detailed(|| Box::new(PlaybookPolicy::new()), &cfg);
        assert_eq!(serial, auto);
    }

    #[test]
    fn random_policy_costs_more_than_doing_nothing() {
        let cfg = tiny_eval(2);
        let random = evaluate_policy(&mut SemiRandomPolicy::new(), &cfg);
        let null = evaluate_policy(&mut NullPolicy::new(), &cfg);
        assert!(random.average_it_cost.mean > null.average_it_cost.mean);
        assert_eq!(null.average_it_cost.mean, 0.0);
    }

    #[test]
    fn detailed_evaluation_reports_every_episode() {
        let cfg = tiny_eval(3);
        let eval = evaluate_policy_detailed(&mut PlaybookPolicy::new(), &cfg);
        assert_eq!(eval.episodes.len(), 3);
        assert_eq!(eval.summary.episodes, 3);
        assert_eq!(eval.policy, "Playbook");
    }

    #[test]
    fn table_formatting_contains_all_policies() {
        let cfg = tiny_eval(1);
        let evals = vec![
            evaluate_policy_detailed(&mut PlaybookPolicy::new(), &cfg),
            evaluate_policy_detailed(&mut NullPolicy::new(), &cfg),
        ];
        let table = format_table(&evals);
        assert!(table.contains("Playbook"));
        assert!(table.contains("No defense"));
        assert!(table.contains("Discounted Return"));
    }
}
