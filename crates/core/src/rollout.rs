//! The parallel episode rollout engine.
//!
//! Every evaluation episode is independent: its environment and its policy
//! RNG are seeded from the episode *index*, and stateful policies are fully
//! reset at the episode boundary. [`rollout`] therefore fans episodes out
//! over scoped worker threads (via [`acso_runtime`]) with one policy
//! instance per worker, and the resulting per-episode metrics are
//! **bit-identical** to a serial run for any thread count — the property the
//! determinism tests in `tests/rollout_determinism.rs` (root package) pin
//! down.
//!
//! The thread count comes from the `ACSO_THREADS` environment variable,
//! defaulting to the machine's available parallelism
//! ([`acso_runtime::available_threads`]).

use crate::policy::DefenderPolicy;
use ics_sim::metrics::EpisodeMetrics;
use ics_sim::{IcsEnvironment, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Salt separating the policy's decision RNG stream from the environment
/// stream (kept at the historical `+10_000` offset of the serial evaluator).
const POLICY_SEED_OFFSET: u64 = 10_000;

/// A batch of episodes to roll out.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutPlan {
    /// Simulation configuration shared by every episode (per-episode seeds
    /// are derived on top of it).
    pub sim: SimConfig,
    /// Number of episodes.
    pub episodes: usize,
    /// Base seed; episode `i` runs with [`acso_runtime::episode_seed`]`(seed, i)`.
    pub seed: u64,
    /// Worker threads; `1` runs inline on the calling thread.
    pub threads: usize,
}

impl RolloutPlan {
    /// A plan using the auto-detected thread count (`ACSO_THREADS` or
    /// available parallelism).
    pub fn new(sim: SimConfig, episodes: usize, seed: u64) -> Self {
        Self {
            sim,
            episodes,
            seed,
            threads: acso_runtime::available_threads(),
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Runs one evaluation episode of a plan against a policy. This is the
/// single code path behind both the serial and the parallel evaluator, so
/// their transcripts cannot diverge.
pub fn run_episode(
    policy: &mut dyn DefenderPolicy,
    sim: &SimConfig,
    base_seed: u64,
    episode: usize,
) -> EpisodeMetrics {
    let episode_seed = acso_runtime::episode_seed(base_seed, episode);
    let sim = sim.clone().with_seed(episode_seed);
    let mut env = IcsEnvironment::new(sim);
    let mut rng = StdRng::seed_from_u64(episode_seed.wrapping_add(POLICY_SEED_OFFSET));
    policy.reset(env.topology());
    env.run_episode(|obs, env| policy.decide(obs, env.topology(), &mut rng))
}

/// Rolls out a plan's episodes serially through one policy instance.
pub fn rollout_serial(policy: &mut dyn DefenderPolicy, plan: &RolloutPlan) -> Vec<EpisodeMetrics> {
    (0..plan.episodes)
        .map(|i| run_episode(policy, &plan.sim, plan.seed, i))
        .collect()
}

/// Rolls out a plan's episodes across worker threads, building one policy
/// per worker with `make_policy`. Returns per-episode metrics in episode
/// order, bit-identical to [`rollout_serial`] with a policy from the same
/// factory.
pub fn rollout<F>(plan: &RolloutPlan, make_policy: F) -> Vec<EpisodeMetrics>
where
    F: Fn() -> Box<dyn DefenderPolicy> + Sync,
{
    acso_runtime::run_indexed_with(plan.episodes, plan.threads, &make_policy, |policy, i| {
        run_episode(policy.as_mut(), &plan.sim, plan.seed, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::PlaybookPolicy;

    fn plan(threads: usize) -> RolloutPlan {
        RolloutPlan {
            sim: SimConfig::tiny().with_max_time(120),
            episodes: 6,
            seed: 21,
            threads,
        }
    }

    #[test]
    fn parallel_rollout_matches_serial_exactly() {
        let serial = rollout_serial(&mut PlaybookPolicy::new(), &plan(1));
        let parallel = rollout(&plan(4), || Box::new(PlaybookPolicy::new()));
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 6);
    }

    #[test]
    fn episodes_differ_across_indices_and_repeat_across_runs() {
        let a = rollout(&plan(2), || Box::new(PlaybookPolicy::new()));
        let b = rollout(&plan(3), || Box::new(PlaybookPolicy::new()));
        assert_eq!(a, b);
        // Different seeds per episode: not all episodes can be identical.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn plan_builder_detects_threads() {
        let p = RolloutPlan::new(SimConfig::tiny(), 3, 0);
        assert!(p.threads >= 1);
        assert_eq!(p.with_threads(2).threads, 2);
    }
}
