//! One entry point per table and figure of the paper's evaluation.
//!
//! Every experiment takes an [`ExperimentScale`] so the same code path can be
//! run at paper scale (full topology, 100 evaluation episodes, long training)
//! or at a reduced scale suitable for CPU smoke runs; EXPERIMENTS.md records
//! which scale produced the numbers in the repository.

use crate::baselines::{DbnExpertPolicy, PlaybookPolicy, SemiRandomPolicy};
use crate::eval::{evaluate_factory_detailed, EvalConfig, PolicyEvaluation};
use crate::policy::DefenderPolicy;
use crate::scenario::ScenarioRegistry;
use crate::train::{train_attention_acso, TrainConfig, TrainedAcso};
use dbn::validate::{validate_filter, ValidationReport};
use ics_sim::apt::AptProfile;
use ics_sim::metrics::MeanStdErr;
use ics_sim::reward::ShapingConfig;
use ics_sim::SimConfig;
use rl::DqnConfig;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// How big to run an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Simulation configuration used for evaluation episodes.
    pub eval_sim: SimConfig,
    /// Simulation configuration used for training (may be smaller/shorter).
    pub train_sim: SimConfig,
    /// Evaluation episodes per policy per condition (the paper uses 100).
    pub eval_episodes: usize,
    /// ACSO training episodes.
    pub train_episodes: usize,
    /// Random-defender episodes used to fit the DBN (the paper uses 1 000).
    pub dbn_episodes: usize,
    /// Base random seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Paper scale: full network, 100 evaluation episodes. Training episode
    /// count is still far below the paper's 1.25 M-step GPU budget; see
    /// EXPERIMENTS.md.
    pub fn paper() -> Self {
        Self {
            eval_sim: SimConfig::full(),
            train_sim: SimConfig::small().with_max_time(2_000),
            eval_episodes: 100,
            train_episodes: 150,
            dbn_episodes: 200,
            seed: 0,
        }
    }

    /// Reduced scale used by the default benchmark binaries: small network,
    /// shorter episodes, a handful of evaluation episodes.
    pub fn quick() -> Self {
        Self {
            eval_sim: SimConfig::small().with_max_time(2_000),
            train_sim: SimConfig::small().with_max_time(1_000),
            eval_episodes: 10,
            train_episodes: 12,
            dbn_episodes: 20,
            seed: 0,
        }
    }

    /// Minimal scale used by tests: tiny network, very short episodes.
    pub fn smoke() -> Self {
        Self {
            eval_sim: SimConfig::tiny().with_max_time(150),
            train_sim: SimConfig::tiny().with_max_time(150),
            eval_episodes: 2,
            train_episodes: 1,
            dbn_episodes: 2,
            seed: 0,
        }
    }

    fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            sim: self.eval_sim.clone(),
            episodes: self.eval_episodes,
            seed: self.seed,
        }
    }

    fn train_config(&self) -> TrainConfig {
        // The paper decays ε by 0.999 per episode over thousands of episodes;
        // CPU-scale runs have far fewer, so the decay is chosen to reach the
        // ε floor about 60% of the way through whatever budget was requested.
        let epsilon_decay = 0.05f64
            .powf(1.0 / (0.6 * self.train_episodes.max(2) as f64))
            .clamp(0.5, 0.999);
        TrainConfig {
            sim: self.train_sim.clone(),
            dbn_threads: None,
            agent: if self.train_episodes <= 2 {
                crate::agent::AgentConfig::smoke()
            } else {
                crate::agent::AgentConfig {
                    dqn: DqnConfig {
                        epsilon_decay,
                        update_every: 8,
                        ..DqnConfig::smoke()
                    },
                    learning_rate: 1e-3,
                    seed: self.seed,
                }
            },
            episodes: self.train_episodes,
            dbn_episodes: self.dbn_episodes,
            seed: self.seed,
        }
    }
}

/// Shared experiment context: the trained ACSO and the DBN model, prepared
/// once and reused by every experiment.
pub struct ExperimentContext {
    /// The trained attention-based defender.
    pub trained: TrainedAcso,
    /// The scale the context was prepared at.
    pub scale: ExperimentScale,
}

/// Trains the ACSO (and its DBN filter) once for use by the experiments.
pub fn prepare(scale: ExperimentScale) -> ExperimentContext {
    let trained = train_attention_acso(&scale.train_config());
    ExperimentContext { trained, scale }
}

/// One factory per policy of the paper's comparison, in presentation order
/// (ACSO first, as in Table 2). Factories let the rollout engine build a
/// private policy instance per worker thread; the trained agent is copied
/// via [`crate::AcsoAgent::eval_clone`] (networks and filter, not the
/// replay history), the baselines are constructed fresh.
type PolicyFactory<'a> = Box<dyn Fn() -> Box<dyn DefenderPolicy> + Sync + 'a>;

fn policy_factories(ctx: &ExperimentContext) -> Vec<PolicyFactory<'_>> {
    let agent = &ctx.trained.agent;
    let model = &ctx.trained.dbn_model;
    vec![
        Box::new(move || Box::new(agent.eval_clone()) as Box<dyn DefenderPolicy>),
        Box::new(move || Box::new(DbnExpertPolicy::new(model.clone()))),
        Box::new(|| Box::new(PlaybookPolicy::new())),
        Box::new(|| Box::new(SemiRandomPolicy::new())),
    ]
}

/// The result of the Table 2 experiment: one evaluation row per policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Evaluations in presentation order (ACSO first, as in the paper).
    pub evaluations: Vec<PolicyEvaluation>,
}

/// Reproduces Table 2: nominal evaluation of the ACSO and the three baseline
/// policies under the training attacker (APT1). Each policy's episodes fan
/// out over the rollout engine's worker threads.
pub fn table2(ctx: &mut ExperimentContext) -> Table2Result {
    let config = ctx.scale.eval_config();
    ctx.trained.agent.set_explore(false);
    let evaluations = policy_factories(ctx)
        .iter()
        .map(|factory| evaluate_factory_detailed(factory, &config))
        .collect();
    Table2Result { evaluations }
}

/// One defender's series across a parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSeries {
    /// Policy name.
    pub policy: String,
    /// Final PLCs offline at each sweep point.
    pub plcs_offline: Vec<MeanStdErr>,
    /// Average level-2/1 nodes compromised at each sweep point.
    pub nodes_compromised: Vec<MeanStdErr>,
    /// Average IT cost at each sweep point.
    pub it_cost: Vec<MeanStdErr>,
}

/// The result of the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Cleanup-effectiveness values swept (training value is 0.5).
    pub effectiveness: Vec<f64>,
    /// One series per policy.
    pub series: Vec<SweepSeries>,
}

/// Reproduces Fig. 6: defender performance as the APT's cleanup effectiveness
/// is perturbed away from the nominal 0.5 used in training.
pub fn fig6(ctx: &mut ExperimentContext) -> Fig6Result {
    let effectiveness = vec![0.1, 0.3, 0.5, 0.7, 0.8, 0.9];
    ctx.trained.agent.set_explore(false);

    let mut series: Vec<SweepSeries> = Vec::new();
    for factory in policy_factories(ctx) {
        let mut name = String::new();
        let mut plcs = Vec::new();
        let mut nodes = Vec::new();
        let mut cost = Vec::new();
        for eff in &effectiveness {
            let mut config = ctx.scale.eval_config();
            config.sim.apt = config.sim.apt.with_cleanup_effectiveness(*eff);
            let evaluation = evaluate_factory_detailed(&factory, &config);
            name = evaluation.policy.clone();
            plcs.push(evaluation.summary.final_plcs_offline);
            nodes.push(evaluation.summary.average_nodes_compromised);
            cost.push(evaluation.summary.average_it_cost);
        }
        series.push(SweepSeries {
            policy: name,
            plcs_offline: plcs,
            nodes_compromised: nodes,
            it_cost: cost,
        });
    }
    Fig6Result {
        effectiveness,
        series,
    }
}

/// One (policy, attacker) cell of the Fig. 10 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Cell {
    /// Policy name.
    pub policy: String,
    /// Attacker name ("APT1" or "APT2").
    pub attacker: String,
    /// Final PLCs offline.
    pub plcs_offline: MeanStdErr,
    /// Average IT cost.
    pub it_cost: MeanStdErr,
    /// Average nodes compromised.
    pub nodes_compromised: MeanStdErr,
}

/// The result of the Fig. 10 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// One cell per (policy, attacker) pair.
    pub cells: Vec<Fig10Cell>,
}

/// Reproduces Fig. 10: robustness of every defender against the nominal APT1
/// and the more aggressive APT2 (which the ACSO never saw in training).
pub fn fig10(ctx: &mut ExperimentContext) -> Fig10Result {
    let mut cells = Vec::new();
    ctx.trained.agent.set_explore(false);
    for (attacker_name, profile) in [("APT1", AptProfile::apt1()), ("APT2", AptProfile::apt2())] {
        let mut config = ctx.scale.eval_config();
        config.sim.apt = AptProfile {
            cleanup_effectiveness: config.sim.apt.cleanup_effectiveness,
            ..profile
        };
        for factory in policy_factories(ctx) {
            let evaluation = evaluate_factory_detailed(&factory, &config);
            cells.push(Fig10Cell {
                policy: evaluation.policy.clone(),
                attacker: attacker_name.to_string(),
                plcs_offline: evaluation.summary.final_plcs_offline,
                it_cost: evaluation.summary.average_it_cost,
                nodes_compromised: evaluation.summary.average_nodes_compromised,
            });
        }
    }
    Fig10Result { cells }
}

/// One grid-search configuration and the training return it achieved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSearchRow {
    /// Whether the shaping reward was enabled.
    pub shaping: bool,
    /// Target-network update interval (gradient updates).
    pub target_update_interval: u64,
    /// ε decay rate per episode.
    pub epsilon_decay: f64,
    /// Mean discounted return over the last half of training episodes.
    pub mean_return: f64,
}

/// Reproduces the §4.2 hyper-parameter grid search protocol on the small
/// network: shaping reward on/off, target-update interval, and ε decay.
///
/// The eight configurations are independent training runs, so they fan out
/// over the rollout worker pool (one full training per task); results come
/// back in grid order regardless of the thread count.
pub fn grid_search(scale: &ExperimentScale) -> Vec<GridSearchRow> {
    let mut grid = Vec::new();
    for shaping in [true, false] {
        for target_update_interval in [500u64, 5_000] {
            for epsilon_decay in [0.999, 0.9999] {
                grid.push((shaping, target_update_interval, epsilon_decay));
            }
        }
    }
    // Each concurrent training run holds its own replay buffer (at paper
    // scale, 2^17 n-step transitions carrying two feature sets each), so
    // concurrency is capped to bound peak memory; `ACSO_THREADS=1` restores
    // the fully sequential behaviour.
    let threads = acso_runtime::available_threads().min(4);
    acso_runtime::run_indexed(grid.len(), threads, |i| {
        let (shaping, target_update_interval, epsilon_decay) = grid[i];
        let mut config = scale.train_config();
        // Each grid cell already occupies one pool worker; keep its inner
        // DBN data-collection serial so the fan-outs do not multiply.
        config.dbn_threads = Some(1);
        config.sim = if shaping {
            config.sim.clone()
        } else {
            config.sim.clone().with_shaping(ShapingConfig::disabled())
        };
        config.agent.dqn.target_update_interval = target_update_interval;
        config.agent.dqn.epsilon_decay = epsilon_decay;
        let trained = train_attention_acso(&config);
        let n = trained.report.episode_returns.len().max(1);
        let mean_return = trained.report.recent_mean_return(n / 2 + 1);
        GridSearchRow {
            shaping,
            target_update_interval,
            epsilon_decay,
            mean_return,
        }
    })
}

/// Scale knobs for the scenario sweep (the registry-wide robustness
/// experiment; see [`scenario_sweep`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSweepScale {
    /// Evaluation episodes per policy per scenario.
    pub eval_episodes: usize,
    /// Episode-horizon override applied to every scenario (`None` keeps each
    /// scenario's own horizon).
    pub max_time: Option<u64>,
    /// ACSO training episodes per scenario (the agent is re-trained on each
    /// scenario's own simulator, like `prepare` does for the paper network).
    pub train_episodes: usize,
    /// Random-defender episodes used to fit each scenario's DBN.
    pub dbn_episodes: usize,
    /// Base random seed shared by every scenario, so each policy sees the
    /// same per-scenario attack sequences.
    pub seed: u64,
}

impl ScenarioSweepScale {
    /// Smoke scale: short horizons, two evaluation episodes — CI-friendly.
    pub fn smoke() -> Self {
        Self {
            eval_episodes: 2,
            max_time: Some(150),
            train_episodes: 1,
            dbn_episodes: 2,
            seed: 0,
        }
    }

    /// Reduced scale for laptop runs.
    pub fn quick() -> Self {
        Self {
            eval_episodes: 6,
            max_time: Some(1_000),
            train_episodes: 8,
            dbn_episodes: 10,
            seed: 0,
        }
    }

    /// Paper-style scale: every scenario at its own full horizon.
    pub fn paper() -> Self {
        Self {
            eval_episodes: 100,
            max_time: None,
            train_episodes: 150,
            dbn_episodes: 200,
            seed: 0,
        }
    }
}

/// One scenario's row of the sweep: every policy's evaluation under that
/// scenario's conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSweepRow {
    /// Scenario name (registry key).
    pub scenario: String,
    /// The scenario's tags, echoed for grouping in reports.
    pub tags: Vec<String>,
    /// One evaluation per policy, in presentation order (ACSO first).
    pub evaluations: Vec<PolicyEvaluation>,
}

/// The result of the scenario sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSweepResult {
    /// One row per scenario, in registry order.
    pub rows: Vec<ScenarioSweepRow>,
}

impl ScenarioSweepResult {
    /// Formats the sweep as an aligned per-scenario results table.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "{:<16} {:<14} {:>18} {:>14} {:>12} {:>16}",
            "Scenario", "Policy", "Return", "PLCs Offline", "IT Cost", "Nodes Compromised"
        )
        .unwrap();
        for row in &self.rows {
            for (i, eval) in row.evaluations.iter().enumerate() {
                let s = &eval.summary;
                writeln!(
                    out,
                    "{:<16} {:<14} {:>10.1} ± {:<5.1} {:>8.2} ± {:<3.2} {:>6.3} ± {:<4.3} {:>9.2} ± {:<4.2}",
                    if i == 0 { row.scenario.as_str() } else { "" },
                    eval.policy,
                    s.discounted_return.mean,
                    s.discounted_return.std_err,
                    s.final_plcs_offline.mean,
                    s.final_plcs_offline.std_err,
                    s.average_it_cost.mean,
                    s.average_it_cost.std_err,
                    s.average_nodes_compromised.mean,
                    s.average_nodes_compromised.std_err,
                )
                .unwrap();
            }
        }
        out
    }
}

/// Evaluates a freshly trained ACSO and the three baselines across every
/// scenario in the registry (the "can it defend networks it was not designed
/// around?" experiment the ROADMAP's scenario goal asks for).
///
/// For each scenario the DBN and the agent are trained on that scenario's
/// own simulator, then all four policies are evaluated through the parallel
/// rollout engine; like every rollout consumer, results are bit-identical
/// for any `ACSO_THREADS` setting.
pub fn scenario_sweep(
    registry: &ScenarioRegistry,
    scale: &ScenarioSweepScale,
) -> ScenarioSweepResult {
    let mut rows = Vec::new();
    for scenario in registry {
        let mut sim = scenario.config.clone();
        if let Some(max_time) = scale.max_time {
            sim = sim.with_max_time(max_time);
        }
        let experiment = ExperimentScale {
            eval_sim: sim.clone(),
            train_sim: sim,
            eval_episodes: scale.eval_episodes,
            train_episodes: scale.train_episodes,
            dbn_episodes: scale.dbn_episodes,
            seed: scale.seed,
        };
        let mut ctx = prepare(experiment);
        let result = table2(&mut ctx);
        rows.push(ScenarioSweepRow {
            scenario: scenario.name.clone(),
            tags: scenario.tags.clone(),
            evaluations: result.evaluations,
        });
    }
    ScenarioSweepResult { rows }
}

/// Reproduces the §4.3 DBN validation: learn the filter from random-defender
/// episodes and report its divergence from the true state.
pub fn dbn_validation(scale: &ExperimentScale) -> ValidationReport {
    let model = dbn::learn::learn_model(&dbn::learn::LearnConfig {
        episodes: scale.dbn_episodes,
        seed: scale.seed,
        sim: scale.eval_sim.clone(),
    });
    validate_filter(
        &model,
        &scale.eval_sim,
        scale.eval_episodes.min(10),
        scale.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_smoke_produces_all_four_policies() {
        let mut ctx = prepare(ExperimentScale::smoke());
        let result = table2(&mut ctx);
        assert_eq!(result.evaluations.len(), 4);
        let names: Vec<&str> = result
            .evaluations
            .iter()
            .map(|e| e.policy.as_str())
            .collect();
        assert_eq!(names, vec!["ACSO", "DBN Expert", "Playbook", "Semi Random"]);
        for eval in &result.evaluations {
            assert_eq!(eval.episodes.len(), 2);
        }
    }

    #[test]
    fn fig10_smoke_covers_both_attackers() {
        let mut ctx = prepare(ExperimentScale::smoke());
        let result = fig10(&mut ctx);
        assert_eq!(result.cells.len(), 8);
        assert!(result.cells.iter().any(|c| c.attacker == "APT1"));
        assert!(result.cells.iter().any(|c| c.attacker == "APT2"));
    }

    #[test]
    fn scenario_sweep_smoke_covers_registry_rows_in_order() {
        let mut registry = ScenarioRegistry::builtin();
        registry.retain_named(&["tiny".to_string()]);
        registry
            .register(
                ics_sim::Scenario::new(
                    "tiny-insider",
                    "tiny network, insider foothold",
                    ics_sim::SimConfig::tiny().with_apt(AptProfile::insider()),
                )
                .with_tags(["attacker"]),
            )
            .unwrap();
        let result = scenario_sweep(&registry, &ScenarioSweepScale::smoke());
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].scenario, "tiny");
        assert_eq!(result.rows[1].scenario, "tiny-insider");
        for row in &result.rows {
            assert_eq!(row.evaluations.len(), 4);
            assert_eq!(row.evaluations[0].policy, "ACSO");
            for eval in &row.evaluations {
                assert_eq!(eval.episodes.len(), 2);
            }
        }
        let table = result.format_table();
        assert!(table.contains("tiny-insider"));
        assert!(table.contains("ACSO"));
    }

    #[test]
    fn dbn_validation_smoke() {
        let report = dbn_validation(&ExperimentScale::smoke());
        assert!(report.samples > 0);
        assert!(report.compromise_accuracy > 0.5);
    }
}
