//! The Autonomous Cyber Security Orchestrator (ACSO).
//!
//! This crate is the paper's primary contribution: a deep-reinforcement-
//! learning defender for industrial control networks, together with the
//! baseline policies it is compared against and the evaluation harness that
//! regenerates the paper's tables and figures.
//!
//! The pieces fit together like this:
//!
//! * [`features`] — turns the simulator's observations and the DBN filter's
//!   beliefs into fixed-width per-node feature vectors;
//! * [`actions`] — the flat defender action space (no-action + per-node
//!   investigations/mitigations + per-PLC recoveries) indexed for Q-learning;
//! * [`agent`] — the attention-based Q-network of Fig. 5, the baseline
//!   1-D-convolutional Q-network of Table 7, and the ACSO agent that wraps a
//!   network, the DBN filter and an ε-greedy policy;
//! * [`baselines`] — the semi-random, playbook, and DBN-expert defenders of
//!   §5.1;
//! * [`train`] — the augmented-DQN training loop of §4.2 (double DQN,
//!   prioritized replay, n-step returns, shaping reward);
//! * [`eval`] — the 100-episode evaluation protocol and its metrics;
//! * [`rollout`] — the rollout engines: deterministic per-episode seeding
//!   fanned out over `ACSO_THREADS` workers, plus the step-synchronized
//!   [`rollout::SyncBatchEngine`] (`ACSO_BATCH`) that batches policy
//!   inference across lockstep episodes — both bit-identical to serial
//!   evaluation;
//! * [`experiments`] — one entry point per table/figure of the paper
//!   (Table 2, Fig. 6, Fig. 10, the grid search, the DBN validation) plus
//!   the registry-wide scenario sweep;
//! * [`scenario`] — the scenario registry: the paper presets, attacker /
//!   IDS / topology variants, TOML-loaded and seed-generated scenarios;
//! * [`snapshot`] — versioned `ACSOSNAP` checkpoints: the full learning
//!   state (networks, optimizer, replay, schedules, RNG positions) written
//!   atomically, restored bit-identically.
//!
//! # Quick start
//!
//! ```
//! use acso_core::baselines::PlaybookPolicy;
//! use acso_core::eval::{evaluate_policy, EvalConfig};
//! use ics_sim::SimConfig;
//!
//! // Evaluate the playbook baseline on a small network for two short episodes.
//! let eval = EvalConfig {
//!     sim: SimConfig::tiny().with_max_time(150),
//!     episodes: 2,
//!     seed: 7,
//! };
//! let summary = evaluate_policy(&mut PlaybookPolicy::new(), &eval);
//! assert_eq!(summary.episodes, 2);
//! ```

#![warn(missing_docs)]

pub mod actions;
pub mod agent;
pub mod baselines;
pub mod eval;
pub mod experiments;
pub mod features;
pub mod policy;
pub mod rollout;
pub mod scenario;
pub mod snapshot;
pub mod train;

pub use actions::ActionSpace;
pub use agent::{AcsoAgent, AttentionQNet, BaselineConvQNet};
pub use eval::{evaluate_policy, EvalConfig};
pub use features::{NodeFeatureEncoder, StateFeatures};
pub use policy::DefenderPolicy;
pub use rollout::{RolloutPlan, SyncBatchEngine};
pub use scenario::{RegistryError, ScenarioRegistry};
pub use snapshot::SnapshotError;
pub use train::CheckpointConfig;
