//! The orchestrator module: the defender's action space (Tables 3 and 4).
//!
//! The ACSO may take investigation actions (which stochastically surface the
//! compromise status of a node without changing it) and mitigation actions
//! (which change node or PLC state to impede the attack), each with a
//! duration in hours and a disruption cost charged against nominal network
//! operations.

use ics_net::{NodeId, PlcId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Investigation actions available to the defender (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvestigationKind {
    /// Simple background malware scan.
    SimpleScan,
    /// Disruptive malware scan; keeps scanning until it detects something or
    /// its maximum duration elapses.
    AdvancedScan,
    /// Task a human analyst to the node.
    HumanAnalysis,
}

impl InvestigationKind {
    /// All investigation kinds.
    pub const ALL: [InvestigationKind; 3] = [
        InvestigationKind::SimpleScan,
        InvestigationKind::AdvancedScan,
        InvestigationKind::HumanAnalysis,
    ];

    /// Per-attempt detection probability when malware is present and has
    /// *not* been cleaned (Table 3, first value).
    pub fn detect_prob(&self) -> f64 {
        match self {
            InvestigationKind::SimpleScan => 0.03,
            InvestigationKind::AdvancedScan => 0.05,
            InvestigationKind::HumanAnalysis => 0.5,
        }
    }

    /// Per-attempt detection probability when the APT has cleaned malware on
    /// the node (Table 3, second value) at the nominal cleanup effectiveness
    /// of 0.5.
    pub fn detect_prob_cleaned(&self) -> f64 {
        match self {
            InvestigationKind::SimpleScan => 0.01,
            InvestigationKind::AdvancedScan => 0.02,
            InvestigationKind::HumanAnalysis => 0.25,
        }
    }

    /// Action duration in hours (Table 3). For the advanced scan this is the
    /// maximum duration: one detection draw is made per hour and the scan
    /// stops early if it raises an alert.
    pub fn duration(&self) -> u64 {
        match self {
            InvestigationKind::SimpleScan => 2,
            InvestigationKind::AdvancedScan => 8,
            InvestigationKind::HumanAnalysis => 8,
        }
    }

    /// Disruption cost of the investigation (Table 3).
    pub fn cost(&self) -> f64 {
        match self {
            InvestigationKind::SimpleScan => 0.01,
            InvestigationKind::AdvancedScan => 0.03,
            InvestigationKind::HumanAnalysis => 0.05,
        }
    }
}

impl fmt::Display for InvestigationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvestigationKind::SimpleScan => "simple scan",
            InvestigationKind::AdvancedScan => "advanced scan",
            InvestigationKind::HumanAnalysis => "human analysis",
        };
        f.write_str(s)
    }
}

/// Node mitigation actions available to the defender (Table 4, first group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MitigationKind {
    /// Power-cycle the node. Countered by reboot persistence.
    Reboot,
    /// Clear cached credentials. Countered by credential persistence.
    ResetPassword,
    /// Clean the disk and reinstall the operating system. No countermeasure.
    ReimageNode,
    /// Move the node to (or back from) the quarantine VLAN on its level.
    Quarantine,
}

impl MitigationKind {
    /// All node mitigation kinds.
    pub const ALL: [MitigationKind; 4] = [
        MitigationKind::Reboot,
        MitigationKind::ResetPassword,
        MitigationKind::ReimageNode,
        MitigationKind::Quarantine,
    ];

    /// Disruption cost when applied to a workstation or HMI (Table 4).
    pub fn cost_host(&self) -> f64 {
        match self {
            MitigationKind::Reboot => 0.01,
            MitigationKind::ResetPassword => 0.03,
            MitigationKind::ReimageNode => 0.05,
            // Not listed in Table 4; chosen between reboot and re-image to
            // reflect that an isolated workstation still degrades operations.
            MitigationKind::Quarantine => 0.02,
        }
    }

    /// Disruption cost when applied to a server (Table 4).
    pub fn cost_server(&self) -> f64 {
        match self {
            MitigationKind::Reboot => 0.03,
            MitigationKind::ResetPassword => 0.05,
            MitigationKind::ReimageNode => 0.1,
            MitigationKind::Quarantine => 0.06,
        }
    }

    /// Duration in hours. Table 4 does not list durations; these values keep
    /// low-cost actions fast and the re-image a multi-hour outage.
    pub fn duration(&self) -> u64 {
        match self {
            MitigationKind::Reboot => 1,
            MitigationKind::ResetPassword => 1,
            MitigationKind::ReimageNode => 8,
            MitigationKind::Quarantine => 1,
        }
    }

    /// The compromise condition that, when present on the node, prevents the
    /// mitigation from remediating it (Table 4 "countermeasures").
    pub fn countermeasure(&self) -> Option<crate::compromise::CompromiseCondition> {
        use crate::compromise::CompromiseCondition as C;
        match self {
            MitigationKind::Reboot => Some(C::RebootPersistence),
            MitigationKind::ResetPassword => Some(C::CredentialPersistence),
            MitigationKind::ReimageNode => None,
            MitigationKind::Quarantine => None,
        }
    }
}

impl fmt::Display for MitigationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MitigationKind::Reboot => "reboot",
            MitigationKind::ResetPassword => "reset password",
            MitigationKind::ReimageNode => "re-image",
            MitigationKind::Quarantine => "quarantine",
        };
        f.write_str(s)
    }
}

/// PLC recovery actions (Table 4, second group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlcRecoveryKind {
    /// Reset PLC conditions: recovers a disrupted process and clears flashed
    /// firmware, but cannot recover destroyed equipment.
    ResetPlc,
    /// Replace a destroyed PLC with new equipment.
    ReplacePlc,
}

impl PlcRecoveryKind {
    /// All PLC recovery kinds.
    pub const ALL: [PlcRecoveryKind; 2] = [PlcRecoveryKind::ResetPlc, PlcRecoveryKind::ReplacePlc];

    /// Disruption cost (Table 4).
    pub fn cost(&self) -> f64 {
        match self {
            PlcRecoveryKind::ResetPlc => 0.02,
            PlcRecoveryKind::ReplacePlc => 0.04,
        }
    }

    /// Duration in hours (not listed in Table 4: a reset is quick, sourcing
    /// and installing replacement equipment takes a day).
    pub fn duration(&self) -> u64 {
        match self {
            PlcRecoveryKind::ResetPlc => 1,
            PlcRecoveryKind::ReplacePlc => 24,
        }
    }
}

impl fmt::Display for PlcRecoveryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlcRecoveryKind::ResetPlc => "reset PLC",
            PlcRecoveryKind::ReplacePlc => "replace PLC",
        };
        f.write_str(s)
    }
}

/// A single defender action submitted to the environment for one time step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenderAction {
    /// Take no action this step.
    #[default]
    NoAction,
    /// Investigate a node.
    Investigate {
        /// Which investigation to run.
        kind: InvestigationKind,
        /// The node to investigate.
        node: NodeId,
    },
    /// Mitigate (remediate or isolate) a node.
    Mitigate {
        /// Which mitigation to apply.
        kind: MitigationKind,
        /// The node to mitigate.
        node: NodeId,
    },
    /// Recover a PLC.
    RecoverPlc {
        /// Which recovery to apply.
        kind: PlcRecoveryKind,
        /// The PLC to recover.
        plc: PlcId,
    },
}

impl DefenderAction {
    /// The node this action targets, if it targets a node.
    pub fn target_node(&self) -> Option<NodeId> {
        match self {
            DefenderAction::Investigate { node, .. } | DefenderAction::Mitigate { node, .. } => {
                Some(*node)
            }
            _ => None,
        }
    }

    /// The PLC this action targets, if it targets a PLC.
    pub fn target_plc(&self) -> Option<PlcId> {
        match self {
            DefenderAction::RecoverPlc { plc, .. } => Some(*plc),
            _ => None,
        }
    }

    /// Duration of the action in hours (0 for [`DefenderAction::NoAction`]).
    pub fn duration(&self) -> u64 {
        match self {
            DefenderAction::NoAction => 0,
            DefenderAction::Investigate { kind, .. } => kind.duration(),
            DefenderAction::Mitigate { kind, .. } => kind.duration(),
            DefenderAction::RecoverPlc { kind, .. } => kind.duration(),
        }
    }

    /// Disruption cost of the action. Node costs depend on whether the target
    /// is a server, so the caller supplies that fact.
    pub fn cost(&self, target_is_server: bool) -> f64 {
        match self {
            DefenderAction::NoAction => 0.0,
            DefenderAction::Investigate { kind, .. } => kind.cost(),
            DefenderAction::Mitigate { kind, .. } => {
                if target_is_server {
                    kind.cost_server()
                } else {
                    kind.cost_host()
                }
            }
            DefenderAction::RecoverPlc { kind, .. } => kind.cost(),
        }
    }
}

impl fmt::Display for DefenderAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenderAction::NoAction => write!(f, "no action"),
            DefenderAction::Investigate { kind, node } => write!(f, "{kind} on {node}"),
            DefenderAction::Mitigate { kind, node } => write!(f, "{kind} on {node}"),
            DefenderAction::RecoverPlc { kind, plc } => write!(f, "{kind} on {plc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compromise::CompromiseCondition as C;

    #[test]
    fn investigation_table_3_values() {
        assert_eq!(InvestigationKind::SimpleScan.detect_prob(), 0.03);
        assert_eq!(InvestigationKind::SimpleScan.detect_prob_cleaned(), 0.01);
        assert_eq!(InvestigationKind::SimpleScan.duration(), 2);
        assert_eq!(InvestigationKind::SimpleScan.cost(), 0.01);

        assert_eq!(InvestigationKind::AdvancedScan.detect_prob(), 0.05);
        assert_eq!(InvestigationKind::AdvancedScan.detect_prob_cleaned(), 0.02);
        assert_eq!(InvestigationKind::AdvancedScan.duration(), 8);
        assert_eq!(InvestigationKind::AdvancedScan.cost(), 0.03);

        assert_eq!(InvestigationKind::HumanAnalysis.detect_prob(), 0.5);
        assert_eq!(InvestigationKind::HumanAnalysis.detect_prob_cleaned(), 0.25);
        assert_eq!(InvestigationKind::HumanAnalysis.duration(), 8);
        assert_eq!(InvestigationKind::HumanAnalysis.cost(), 0.05);
    }

    #[test]
    fn mitigation_table_4_values() {
        assert_eq!(MitigationKind::Reboot.cost_host(), 0.01);
        assert_eq!(MitigationKind::Reboot.cost_server(), 0.03);
        assert_eq!(MitigationKind::ResetPassword.cost_host(), 0.03);
        assert_eq!(MitigationKind::ResetPassword.cost_server(), 0.05);
        assert_eq!(MitigationKind::ReimageNode.cost_host(), 0.05);
        assert_eq!(MitigationKind::ReimageNode.cost_server(), 0.1);

        assert_eq!(
            MitigationKind::Reboot.countermeasure(),
            Some(C::RebootPersistence)
        );
        assert_eq!(
            MitigationKind::ResetPassword.countermeasure(),
            Some(C::CredentialPersistence)
        );
        assert_eq!(MitigationKind::ReimageNode.countermeasure(), None);
    }

    #[test]
    fn plc_recovery_table_4_values() {
        assert_eq!(PlcRecoveryKind::ResetPlc.cost(), 0.02);
        assert_eq!(PlcRecoveryKind::ReplacePlc.cost(), 0.04);
    }

    #[test]
    fn costlier_mitigations_are_more_effective() {
        // The paper's design intent: effective actions cost more.
        assert!(MitigationKind::ReimageNode.cost_host() > MitigationKind::Reboot.cost_host());
        assert!(MitigationKind::ReimageNode.countermeasure().is_none());
        assert!(MitigationKind::Reboot.countermeasure().is_some());
    }

    #[test]
    fn action_accessors() {
        let node = NodeId::from_index(2);
        let plc = PlcId::from_index(5);
        let a = DefenderAction::Investigate {
            kind: InvestigationKind::SimpleScan,
            node,
        };
        assert_eq!(a.target_node(), Some(node));
        assert_eq!(a.target_plc(), None);
        assert_eq!(a.duration(), 2);
        assert_eq!(a.cost(false), 0.01);

        let m = DefenderAction::Mitigate {
            kind: MitigationKind::ReimageNode,
            node,
        };
        assert_eq!(m.cost(true), 0.1);
        assert_eq!(m.cost(false), 0.05);

        let p = DefenderAction::RecoverPlc {
            kind: PlcRecoveryKind::ReplacePlc,
            plc,
        };
        assert_eq!(p.target_plc(), Some(plc));
        assert_eq!(p.cost(false), 0.04);

        assert_eq!(DefenderAction::NoAction.duration(), 0);
        assert_eq!(DefenderAction::NoAction.cost(true), 0.0);
        assert_eq!(DefenderAction::default(), DefenderAction::NoAction);
    }

    #[test]
    fn display_is_informative() {
        let a = DefenderAction::Mitigate {
            kind: MitigationKind::Reboot,
            node: NodeId::from_index(1),
        };
        assert!(a.to_string().contains("reboot"));
        assert!(a.to_string().contains("node#1"));
    }
}
