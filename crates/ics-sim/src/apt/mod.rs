//! The APT agent module: attacker actions, parameters, knowledge and the
//! baseline finite-state-machine attack policy (paper §3.2 and appendix).

pub mod action;
pub mod fsm;
pub mod knowledge;
pub mod params;
pub mod policy;

pub use action::{AptAction, AptActionKind, AptTarget};
pub use fsm::{AptPhase, FsmAptPolicy};
pub use knowledge::AptKnowledge;
pub use params::{AptParams, AptProfile, AttackObjective, AttackVector, InitialAccess};
pub use policy::{AptContext, AptPolicy};
