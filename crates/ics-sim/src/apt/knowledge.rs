//! What the attacker knows about the network.
//!
//! The APT has full knowledge of the compromise state of nodes under its
//! control, but must discover everything else: which VLANs exist, where the
//! servers are, which PLCs exist. If a node the APT previously scanned has
//! been moved (quarantined), the APT is not aware until an action against it
//! fails and it re-scans.

use ics_net::{NodeId, PlcId, ServerRole, VlanId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The attacker's accumulated knowledge during an episode.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AptKnowledge {
    /// Node locations as of the last scan that observed them. May be stale if
    /// the defender has quarantined a node since.
    pub known_locations: HashMap<NodeId, VlanId>,
    /// VLANs the APT has discovered (network discovery phase).
    pub discovered_vlans: HashSet<VlanId>,
    /// Servers the APT has located, by role.
    pub located_servers: HashMap<ServerRole, NodeId>,
    /// PLCs discovered during PLC discovery.
    pub discovered_plcs: HashSet<PlcId>,
    /// Whether analysis of the data historian has started.
    pub historian_analysis_started: bool,
    /// Whether analysis of the data historian has completed.
    pub historian_analysis_complete: bool,
}

impl AptKnowledge {
    /// Fresh, empty knowledge (start of an episode).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a node was observed on a VLAN.
    pub fn record_location(&mut self, node: NodeId, vlan: VlanId) {
        self.known_locations.insert(node, vlan);
    }

    /// Forgets the location of a node (after an action against it failed
    /// because it had been moved).
    pub fn forget_location(&mut self, node: NodeId) {
        self.known_locations.remove(&node);
    }

    /// The VLAN the APT believes the node is on, if known.
    pub fn believed_location(&self, node: NodeId) -> Option<VlanId> {
        self.known_locations.get(&node).copied()
    }

    /// Records a located server.
    pub fn record_server(&mut self, role: ServerRole, node: NodeId) {
        self.located_servers.insert(role, node);
    }

    /// The node the APT believes hosts the given server role.
    pub fn server(&self, role: ServerRole) -> Option<NodeId> {
        self.located_servers.get(&role).copied()
    }

    /// Records discovery of a PLC.
    pub fn record_plc(&mut self, plc: PlcId) {
        self.discovered_plcs.insert(plc);
    }

    /// Number of PLCs discovered so far.
    pub fn discovered_plc_count(&self) -> usize {
        self.discovered_plcs.len()
    }

    /// Whether the given VLAN has been discovered.
    pub fn knows_vlan(&self, vlan: VlanId) -> bool {
        self.discovered_vlans.contains(&vlan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_bookkeeping() {
        let mut k = AptKnowledge::new();
        let n = NodeId::from_index(4);
        assert_eq!(k.believed_location(n), None);
        k.record_location(n, VlanId::ops(2));
        assert_eq!(k.believed_location(n), Some(VlanId::ops(2)));
        k.forget_location(n);
        assert_eq!(k.believed_location(n), None);
    }

    #[test]
    fn server_and_plc_bookkeeping() {
        let mut k = AptKnowledge::new();
        assert_eq!(k.server(ServerRole::Opc), None);
        k.record_server(ServerRole::Opc, NodeId::from_index(25));
        assert_eq!(k.server(ServerRole::Opc), Some(NodeId::from_index(25)));

        assert_eq!(k.discovered_plc_count(), 0);
        k.record_plc(PlcId::from_index(0));
        k.record_plc(PlcId::from_index(0));
        k.record_plc(PlcId::from_index(1));
        assert_eq!(k.discovered_plc_count(), 2);
    }

    #[test]
    fn vlan_discovery() {
        let mut k = AptKnowledge::new();
        assert!(!k.knows_vlan(VlanId::ops(1)));
        k.discovered_vlans.insert(VlanId::ops(1));
        assert!(k.knows_vlan(VlanId::ops(1)));
    }
}
