//! The baseline finite-state-machine attacker (Fig. 3 / Fig. 8 of the paper).
//!
//! The policy is deliberately *stateless across calls*: the current machine
//! state is re-derived every hour from the exit criteria in Fig. 3, which
//! automatically implements the paper's reversion rule ("if during execution
//! an earlier phase criteria is no longer satisfied, the policy will revert to
//! that earlier phase before continuing").

use crate::apt::action::{AptAction, AptActionKind, AptTarget};
use crate::apt::params::{AptParams, AttackObjective, AttackVector};
use crate::apt::policy::{AptContext, AptPolicy};
use crate::compromise::CompromiseCondition as C;
use crate::plc_state::PlcStatus;
use ics_net::{Level, NodeId, ServerRole, VlanId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The machine states of the attacker FSM (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AptPhase {
    /// The attacker has lost every foothold and is re-entering the network.
    Reestablish,
    /// Discover, compromise and escalate level-2 hosts.
    LateralMovement,
    /// Discover VLAN subnets and switches.
    NetworkDiscovery,
    /// Compromise and analyze the data historian server.
    ProcessDiscovery,
    /// Compromise the OPC server (OPC attack vector only).
    OpcCompromise,
    /// Compromise the initial level-1 HMI node (HMI vector only).
    HmiCapture,
    /// Discover, compromise and escalate additional HMIs (HMI vector only).
    HmiLateralMovement,
    /// Locate the PLCs required for the attack.
    PlcDiscovery,
    /// Flash firmware on targeted PLCs (destroy objective only).
    FirmwareCompromise,
    /// Disrupt or destroy PLC processes.
    Execute,
    /// The attack objective has been achieved.
    Complete,
}

impl AptPhase {
    /// Short name used in logs.
    pub fn name(&self) -> &'static str {
        match self {
            AptPhase::Reestablish => "re-establish",
            AptPhase::LateralMovement => "lateral movement",
            AptPhase::NetworkDiscovery => "network discovery",
            AptPhase::ProcessDiscovery => "process discovery",
            AptPhase::OpcCompromise => "OPC compromise",
            AptPhase::HmiCapture => "HMI capture",
            AptPhase::HmiLateralMovement => "HMI lateral movement",
            AptPhase::PlcDiscovery => "PLC discovery",
            AptPhase::FirmwareCompromise => "firmware compromise",
            AptPhase::Execute => "execute attack",
            AptPhase::Complete => "complete",
        }
    }
}

impl fmt::Display for AptPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The baseline stochastic finite-state-machine attack policy.
#[derive(Debug, Default)]
pub struct FsmAptPolicy {
    last_phase: Option<AptPhase>,
}

impl FsmAptPolicy {
    /// Creates the baseline FSM attacker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The machine state implied by the current network state and attacker
    /// knowledge (re-derived every hour; see module docs).
    pub fn derive_phase(ctx: &AptContext<'_>) -> AptPhase {
        let s = ctx.state;
        let k = ctx.knowledge;
        let p = ctx.params;
        let topo = ctx.topology;

        if !s.any_compromised() {
            return AptPhase::Reestablish;
        }

        let l2_compromised = topo
            .nodes()
            .filter(|n| n.level == Level::Engineering2)
            .filter(|n| s.compromise(n.id).is_compromised())
            .count();
        if l2_compromised < p.lateral_threshold {
            return AptPhase::LateralMovement;
        }

        if !topo.ops_vlans().iter().all(|v| k.knows_vlan(*v)) {
            return AptPhase::NetworkDiscovery;
        }

        if !k.historian_analysis_started {
            return AptPhase::ProcessDiscovery;
        }

        match p.vector {
            AttackVector::Opc => {
                let opc_ok = topo
                    .server(ServerRole::Opc)
                    .map(|n| s.compromise(n.id).is_compromised())
                    .unwrap_or(false);
                if !opc_ok {
                    return AptPhase::OpcCompromise;
                }
            }
            AttackVector::Hmi => {
                let hmi_total = topo.hmis().count();
                let hmi_compromised = topo
                    .hmis()
                    .filter(|n| s.compromise(n.id).is_compromised())
                    .count();
                if hmi_compromised == 0 {
                    return AptPhase::HmiCapture;
                }
                if hmi_compromised < p.lateral_threshold.min(hmi_total) {
                    return AptPhase::HmiLateralMovement;
                }
            }
        }

        let plc_goal = p.plc_threshold.min(topo.plc_count());
        if k.discovered_plc_count() < plc_goal {
            return AptPhase::PlcDiscovery;
        }

        if p.objective == AttackObjective::Destroy {
            let flashed = s.firmware_compromised_count();
            let destroyed = s.destroyed_plc_count();
            if flashed + destroyed < plc_goal {
                return AptPhase::FirmwareCompromise;
            }
            if destroyed < plc_goal {
                return AptPhase::Execute;
            }
        } else {
            let offline = s.offline_plc_count();
            if offline < plc_goal {
                return AptPhase::Execute;
            }
        }
        AptPhase::Complete
    }

    /// Whether an identical (kind, target) action is already in flight.
    fn in_progress(ctx: &AptContext<'_>, kind: AptActionKind, target: AptTarget) -> bool {
        ctx.in_progress
            .iter()
            .any(|a| a.kind == kind && a.target == target)
    }

    /// A controlled node usable as the source of an action, preferring nodes
    /// on the given level.
    fn pick_source(
        ctx: &AptContext<'_>,
        prefer_level: Option<Level>,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let controlled: Vec<NodeId> = ctx
            .state
            .compromised_nodes()
            .into_iter()
            .filter(|n| !ctx.state.is_quarantined(*n))
            .collect();
        if controlled.is_empty() {
            return None;
        }
        if let Some(level) = prefer_level {
            let on_level: Vec<NodeId> = controlled
                .iter()
                .copied()
                .filter(|n| ctx.topology.node(*n).map(|x| x.level) == Ok(level))
                .collect();
            if !on_level.is_empty() {
                return on_level.choose(rng).copied();
            }
        }
        controlled.choose(rng).copied()
    }

    /// The node commands to the PLCs are sent from: the OPC server for the
    /// OPC vector, a compromised HMI for the HMI vector.
    fn attack_access_node(ctx: &AptContext<'_>, rng: &mut StdRng) -> Option<NodeId> {
        match ctx.params.vector {
            AttackVector::Opc => ctx
                .topology
                .server(ServerRole::Opc)
                .map(|n| n.id)
                .filter(|n| {
                    ctx.state.compromise(*n).is_compromised() && !ctx.state.is_quarantined(*n)
                }),
            AttackVector::Hmi => {
                let hmis: Vec<NodeId> = ctx
                    .topology
                    .hmis()
                    .map(|n| n.id)
                    .filter(|n| {
                        ctx.state.compromise(*n).is_compromised() && !ctx.state.is_quarantined(*n)
                    })
                    .collect();
                hmis.choose(rng).copied()
            }
        }
    }

    fn lateral_movement_actions(
        &self,
        ctx: &AptContext<'_>,
        level: Level,
        rng: &mut StdRng,
    ) -> Vec<AptAction> {
        let mut actions = Vec::new();
        let s = ctx.state;
        let topo = ctx.topology;

        // Candidate targets: nodes the attacker has scanned (knows about) on
        // the level, not yet compromised, believed reachable.
        let known_uncompromised: Vec<NodeId> = topo
            .nodes()
            .filter(|n| n.level == level && !n.kind.is_server())
            .map(|n| n.id)
            .filter(|id| {
                ctx.knowledge.believed_location(*id).is_some()
                    && !s.compromise(*id).is_compromised()
            })
            .collect();

        // 1. Scan the level's operations VLANs (every segment) if we have no
        //    fresh targets.
        if known_uncompromised.is_empty() {
            for vlan in topo
                .ops_vlans()
                .into_iter()
                .filter(|v| v.level_number() == level.number())
            {
                if Self::in_progress(ctx, AptActionKind::ScanVlan, AptTarget::Vlan(vlan)) {
                    continue;
                }
                if let Some(src) = Self::pick_source(ctx, Some(level), rng) {
                    actions.push(AptAction::new(
                        AptActionKind::ScanVlan,
                        Some(src),
                        AptTarget::Vlan(vlan),
                    ));
                }
            }
        }

        // 2. Compromise known nodes.
        for target in &known_uncompromised {
            if Self::in_progress(ctx, AptActionKind::Compromise, AptTarget::Node(*target)) {
                continue;
            }
            if let Some(src) = Self::pick_source(ctx, Some(level), rng) {
                actions.push(AptAction::new(
                    AptActionKind::Compromise,
                    Some(src),
                    AptTarget::Node(*target),
                ));
            }
        }

        // 3. Consolidate control of nodes we already own: escalate, persist,
        //    and clean up in escalation order.
        for node in s.compromised_nodes() {
            let comp = s.compromise(node);
            let maintenance = [
                (AptActionKind::EscalatePrivilege, !comp.has_admin()),
                (
                    AptActionKind::RebootPersist,
                    !comp.contains(C::RebootPersistence),
                ),
                (
                    AptActionKind::CredentialPersist,
                    comp.has_admin() && !comp.contains(C::CredentialPersistence),
                ),
                (
                    AptActionKind::Cleanup,
                    comp.has_admin() && !comp.contains(C::MalwareCleaned),
                ),
            ];
            for (kind, needed) in maintenance {
                if needed && !Self::in_progress(ctx, kind, AptTarget::Node(node)) {
                    actions.push(AptAction::new(kind, Some(node), AptTarget::Node(node)));
                }
            }
        }
        actions
    }

    fn phase_actions(
        &self,
        phase: AptPhase,
        ctx: &AptContext<'_>,
        rng: &mut StdRng,
    ) -> Vec<AptAction> {
        let topo = ctx.topology;
        let s = ctx.state;
        let k = ctx.knowledge;
        match phase {
            AptPhase::Reestablish => {
                if Self::in_progress(ctx, AptActionKind::InitialIntrusion, AptTarget::None) {
                    Vec::new()
                } else {
                    vec![AptAction::new(
                        AptActionKind::InitialIntrusion,
                        None,
                        AptTarget::None,
                    )]
                }
            }
            AptPhase::LateralMovement => {
                self.lateral_movement_actions(ctx, Level::Engineering2, rng)
            }
            AptPhase::NetworkDiscovery => {
                let mut actions = Vec::new();
                if !Self::in_progress(ctx, AptActionKind::DiscoverVlan, AptTarget::None) {
                    if let Some(src) = Self::pick_source(ctx, Some(Level::Engineering2), rng) {
                        actions.push(AptAction::new(
                            AptActionKind::DiscoverVlan,
                            Some(src),
                            AptTarget::None,
                        ));
                    }
                }
                // Keep consolidating while discovery runs.
                actions.extend(self.lateral_movement_actions(ctx, Level::Engineering2, rng));
                actions
            }
            AptPhase::ProcessDiscovery => {
                let mut actions = Vec::new();
                match k.server(ServerRole::Historian) {
                    None => {
                        let target = AptTarget::Vlan(VlanId::ops(2));
                        if !Self::in_progress(ctx, AptActionKind::DiscoverServer, target) {
                            if let Some(src) =
                                Self::pick_source(ctx, Some(Level::Engineering2), rng)
                            {
                                actions.push(AptAction::new(
                                    AptActionKind::DiscoverServer,
                                    Some(src),
                                    target,
                                ));
                            }
                        }
                    }
                    Some(historian) => {
                        if !s.compromise(historian).is_compromised() {
                            let target = AptTarget::Node(historian);
                            if !Self::in_progress(ctx, AptActionKind::Compromise, target) {
                                if let Some(src) =
                                    Self::pick_source(ctx, Some(Level::Engineering2), rng)
                                {
                                    actions.push(AptAction::new(
                                        AptActionKind::Compromise,
                                        Some(src),
                                        target,
                                    ));
                                }
                            }
                        } else if !k.historian_analysis_started
                            && !Self::in_progress(
                                ctx,
                                AptActionKind::AnalyzeHistorian,
                                AptTarget::Node(historian),
                            )
                        {
                            actions.push(AptAction::new(
                                AptActionKind::AnalyzeHistorian,
                                Some(historian),
                                AptTarget::Node(historian),
                            ));
                        }
                    }
                }
                actions.extend(self.lateral_movement_actions(ctx, Level::Engineering2, rng));
                actions
            }
            AptPhase::OpcCompromise => {
                let mut actions = Vec::new();
                match k.server(ServerRole::Opc) {
                    None => {
                        let target = AptTarget::Vlan(VlanId::ops(2));
                        if !Self::in_progress(ctx, AptActionKind::DiscoverServer, target) {
                            if let Some(src) =
                                Self::pick_source(ctx, Some(Level::Engineering2), rng)
                            {
                                actions.push(AptAction::new(
                                    AptActionKind::DiscoverServer,
                                    Some(src),
                                    target,
                                ));
                            }
                        }
                    }
                    Some(opc) => {
                        let target = AptTarget::Node(opc);
                        if !Self::in_progress(ctx, AptActionKind::Compromise, target) {
                            if let Some(src) =
                                Self::pick_source(ctx, Some(Level::Engineering2), rng)
                            {
                                actions.push(AptAction::new(
                                    AptActionKind::Compromise,
                                    Some(src),
                                    target,
                                ));
                            }
                        }
                    }
                }
                actions
            }
            AptPhase::HmiCapture | AptPhase::HmiLateralMovement => {
                let mut actions = Vec::new();
                let known_hmis: Vec<NodeId> = topo
                    .hmis()
                    .map(|n| n.id)
                    .filter(|id| k.believed_location(*id).is_some())
                    .filter(|id| !s.compromise(*id).is_compromised())
                    .collect();
                if known_hmis.is_empty() {
                    for vlan in topo
                        .ops_vlans()
                        .into_iter()
                        .filter(|v| v.level_number() == 1)
                    {
                        let target = AptTarget::Vlan(vlan);
                        if Self::in_progress(ctx, AptActionKind::ScanVlan, target) {
                            continue;
                        }
                        if let Some(src) = Self::pick_source(ctx, Some(Level::Engineering2), rng) {
                            actions.push(AptAction::new(
                                AptActionKind::ScanVlan,
                                Some(src),
                                target,
                            ));
                        }
                    }
                } else {
                    for hmi in known_hmis {
                        let target = AptTarget::Node(hmi);
                        if !Self::in_progress(ctx, AptActionKind::Compromise, target) {
                            if let Some(src) = Self::pick_source(ctx, None, rng) {
                                actions.push(AptAction::new(
                                    AptActionKind::Compromise,
                                    Some(src),
                                    target,
                                ));
                            }
                        }
                    }
                }
                actions
            }
            AptPhase::PlcDiscovery => {
                let mut actions = Vec::new();
                let target = AptTarget::Vlan(VlanId::ops(1));
                if !Self::in_progress(ctx, AptActionKind::DiscoverPlc, target) {
                    if let Some(src) = Self::attack_access_node(ctx, rng) {
                        actions.push(AptAction::new(
                            AptActionKind::DiscoverPlc,
                            Some(src),
                            target,
                        ));
                    }
                }
                actions
            }
            AptPhase::FirmwareCompromise => {
                let mut actions = Vec::new();
                if let Some(src) = Self::attack_access_node(ctx, rng) {
                    for plc in &k.discovered_plcs {
                        let plc_state = s.plc(*plc);
                        if plc_state.firmware_compromised
                            || plc_state.status == PlcStatus::Destroyed
                        {
                            continue;
                        }
                        let target = AptTarget::Plc(*plc);
                        if !Self::in_progress(ctx, AptActionKind::FlashFirmware, target) {
                            actions.push(AptAction::new(
                                AptActionKind::FlashFirmware,
                                Some(src),
                                target,
                            ));
                        }
                    }
                }
                actions
            }
            AptPhase::Execute => {
                let mut actions = Vec::new();
                if let Some(src) = Self::attack_access_node(ctx, rng) {
                    for plc in &k.discovered_plcs {
                        let plc_state = s.plc(*plc);
                        let (kind, ready) = match ctx.params.objective {
                            AttackObjective::Disrupt => (
                                AptActionKind::DisruptPlc,
                                plc_state.status == PlcStatus::Nominal,
                            ),
                            AttackObjective::Destroy => (
                                AptActionKind::DestroyPlc,
                                plc_state.firmware_compromised
                                    && plc_state.status != PlcStatus::Destroyed,
                            ),
                        };
                        if !ready {
                            continue;
                        }
                        let target = AptTarget::Plc(*plc);
                        if !Self::in_progress(ctx, kind, target) {
                            actions.push(AptAction::new(kind, Some(src), target));
                        }
                    }
                }
                actions
            }
            AptPhase::Complete => Vec::new(),
        }
    }
}

impl AptPolicy for FsmAptPolicy {
    fn reset(&mut self, _params: &AptParams) {
        self.last_phase = None;
    }

    fn decide(&mut self, ctx: &AptContext<'_>, rng: &mut StdRng) -> Vec<AptAction> {
        let phase = Self::derive_phase(ctx);
        self.last_phase = Some(phase);
        if ctx.free_labor == 0 {
            return Vec::new();
        }
        let mut actions = self.phase_actions(phase, ctx, rng);
        actions.truncate(ctx.free_labor);
        actions
    }

    fn phase_name(&self) -> &'static str {
        self.last_phase.map(|p| p.name()).unwrap_or("not started")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apt::knowledge::AptKnowledge;
    use crate::state::NetworkState;
    use ics_net::{Topology, TopologySpec};
    use rand::SeedableRng;

    struct Fixture {
        topo: Topology,
        state: NetworkState,
        knowledge: AptKnowledge,
        params: AptParams,
    }

    impl Fixture {
        fn new() -> Self {
            let topo = Topology::build(&TopologySpec::paper_small()).unwrap();
            let state = NetworkState::new(&topo);
            let knowledge = AptKnowledge::new();
            let params = AptParams::apt1(AttackObjective::Disrupt, AttackVector::Opc);
            Self {
                topo,
                state,
                knowledge,
                params,
            }
        }

        fn ctx<'a>(&'a self, in_progress: &'a [AptAction]) -> AptContext<'a> {
            AptContext {
                topology: &self.topo,
                state: &self.state,
                knowledge: &self.knowledge,
                params: &self.params,
                in_progress,
                free_labor: self.params.labor_rate,
                time: 0,
            }
        }

        fn compromise(&mut self, node: NodeId, admin: bool) {
            self.state.update_compromise(node, |c| {
                c.try_insert(C::Scanned);
                c.try_insert(C::InitialCompromise);
                if admin {
                    c.try_insert(C::AdminAccess);
                }
            });
        }
    }

    #[test]
    fn phase_is_reestablish_with_no_footholds() {
        let f = Fixture::new();
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::Reestablish
        );
    }

    #[test]
    fn phase_progression_follows_fig_3() {
        let mut f = Fixture::new();
        // Beachhead only -> lateral movement.
        let ws: Vec<NodeId> = f.topo.workstations().map(|n| n.id).collect();
        f.compromise(ws[0], false);
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::LateralMovement
        );

        // Threshold compromised -> network discovery.
        f.compromise(ws[1], false);
        f.compromise(ws[2], false);
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::NetworkDiscovery
        );

        // All VLANs discovered -> process discovery.
        for v in f.topo.ops_vlans() {
            f.knowledge.discovered_vlans.insert(v);
        }
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::ProcessDiscovery
        );

        // Historian analysis started -> OPC compromise (OPC vector).
        f.knowledge.historian_analysis_started = true;
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::OpcCompromise
        );

        // OPC compromised -> PLC discovery.
        let opc = f.topo.server(ServerRole::Opc).unwrap().id;
        f.compromise(opc, true);
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::PlcDiscovery
        );

        // Enough PLCs discovered -> execute (disrupt objective skips firmware).
        for plc in f.topo.plc_ids().take(f.params.plc_threshold) {
            f.knowledge.record_plc(plc);
        }
        assert_eq!(FsmAptPolicy::derive_phase(&f.ctx(&[])), AptPhase::Execute);

        // All targeted PLCs offline -> complete.
        for plc in f.topo.plc_ids().take(f.params.plc_threshold) {
            f.state.plc_mut(plc).status = PlcStatus::Disrupted;
        }
        assert_eq!(FsmAptPolicy::derive_phase(&f.ctx(&[])), AptPhase::Complete);
    }

    #[test]
    fn destroy_objective_requires_firmware_phase() {
        let mut f = Fixture::new();
        f.params = AptParams::apt1(AttackObjective::Destroy, AttackVector::Opc);
        let ws: Vec<NodeId> = f.topo.workstations().map(|n| n.id).collect();
        for w in ws.iter().take(3) {
            f.compromise(*w, false);
        }
        for v in f.topo.ops_vlans() {
            f.knowledge.discovered_vlans.insert(v);
        }
        f.knowledge.historian_analysis_started = true;
        let opc = f.topo.server(ServerRole::Opc).unwrap().id;
        f.compromise(opc, true);
        for plc in f.topo.plc_ids().take(f.params.plc_threshold) {
            f.knowledge.record_plc(plc);
        }
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::FirmwareCompromise
        );
        for plc in f.topo.plc_ids().take(f.params.plc_threshold) {
            f.state.plc_mut(plc).firmware_compromised = true;
        }
        assert_eq!(FsmAptPolicy::derive_phase(&f.ctx(&[])), AptPhase::Execute);
    }

    #[test]
    fn reversion_when_defender_evicts_nodes() {
        let mut f = Fixture::new();
        let ws: Vec<NodeId> = f.topo.workstations().map(|n| n.id).collect();
        for w in ws.iter().take(3) {
            f.compromise(*w, false);
        }
        for v in f.topo.ops_vlans() {
            f.knowledge.discovered_vlans.insert(v);
        }
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::ProcessDiscovery
        );
        // Defender re-images two of the three footholds: revert to lateral
        // movement.
        f.state.update_compromise(ws[0], |c| c.clear_all());
        f.state.update_compromise(ws[1], |c| c.clear_all());
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::LateralMovement
        );
    }

    #[test]
    fn decide_respects_labor_budget() {
        let mut f = Fixture::new();
        let ws: Vec<NodeId> = f.topo.workstations().map(|n| n.id).collect();
        f.compromise(ws[0], false);
        // Give the attacker knowledge of many targets so it wants to start
        // more actions than the budget allows.
        for w in &ws {
            f.knowledge.record_location(*w, VlanId::ops(2));
        }
        let mut policy = FsmAptPolicy::new();
        policy.reset(&f.params);
        let mut rng = StdRng::seed_from_u64(0);
        let actions = policy.decide(&f.ctx(&[]), &mut rng);
        assert!(actions.len() <= f.params.labor_rate);
        assert!(!actions.is_empty());
        assert_eq!(policy.phase_name(), "lateral movement");
    }

    #[test]
    fn hmi_vector_goes_through_hmi_capture() {
        let mut f = Fixture::new();
        f.params = AptParams::apt1(AttackObjective::Disrupt, AttackVector::Hmi);
        let ws: Vec<NodeId> = f.topo.workstations().map(|n| n.id).collect();
        for w in ws.iter().take(3) {
            f.compromise(*w, false);
        }
        for v in f.topo.ops_vlans() {
            f.knowledge.discovered_vlans.insert(v);
        }
        f.knowledge.historian_analysis_started = true;
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::HmiCapture
        );
        let hmis: Vec<NodeId> = f.topo.hmis().map(|n| n.id).collect();
        f.compromise(hmis[0], false);
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::HmiLateralMovement
        );
        f.compromise(hmis[1], false);
        f.compromise(hmis[2], false);
        assert_eq!(
            FsmAptPolicy::derive_phase(&f.ctx(&[])),
            AptPhase::PlcDiscovery
        );
    }

    #[test]
    fn quarantined_access_node_is_not_used() {
        let mut f = Fixture::new();
        let opc = f.topo.server(ServerRole::Opc).unwrap().id;
        f.compromise(opc, true);
        f.state.toggle_quarantine(opc);
        let ctx = f.ctx(&[]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(FsmAptPolicy::attack_access_node(&ctx, &mut rng), None);
    }
}
