//! APT attacker actions (Table 5 of the paper).

use ics_net::{NodeId, PlcId, VlanId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kinds of action available to the attacker (Table 5), plus
/// [`AptActionKind::InitialIntrusion`], which re-establishes a beachhead after
/// the defender has evicted the attacker from every node (the paper assumes a
/// persistent, well-funded adversary that will re-enter via social
/// engineering; without this the first successful re-image would trivially end
/// every episode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AptActionKind {
    // Lateral movement ----------------------------------------------------
    /// Scan a targeted VLAN for nodes.
    ScanVlan,
    /// Gain initial control over a node.
    Compromise,
    /// Set reboot persistence on a controlled node.
    RebootPersist,
    /// Gain administrator access on a controlled node.
    EscalatePrivilege,
    /// Set credential-change persistence on an admin node.
    CredentialPersist,
    /// Remove malware files to reduce the probability of alerts.
    Cleanup,
    // Vertical movement ---------------------------------------------------
    /// Scan for occupied VLANs.
    DiscoverVlan,
    /// Scan for a server on a VLAN.
    DiscoverServer,
    /// Analyze a compromised data historian.
    AnalyzeHistorian,
    // Attack ----------------------------------------------------------------
    /// Scan a VLAN for PLCs.
    DiscoverPlc,
    /// Corrupt PLC firmware.
    FlashFirmware,
    /// Disrupt a PLC process.
    DisruptPlc,
    /// Destroy PLC equipment.
    DestroyPlc,
    // Re-entry (not in Table 5; see type-level docs) ------------------------
    /// Re-establish an initial beachhead on the level-2 network after losing
    /// control of every node.
    InitialIntrusion,
}

impl AptActionKind {
    /// All action kinds, in Table 5 order (re-entry last).
    pub const ALL: [AptActionKind; 14] = [
        AptActionKind::ScanVlan,
        AptActionKind::Compromise,
        AptActionKind::RebootPersist,
        AptActionKind::EscalatePrivilege,
        AptActionKind::CredentialPersist,
        AptActionKind::Cleanup,
        AptActionKind::DiscoverVlan,
        AptActionKind::DiscoverServer,
        AptActionKind::AnalyzeHistorian,
        AptActionKind::DiscoverPlc,
        AptActionKind::FlashFirmware,
        AptActionKind::DisruptPlc,
        AptActionKind::DestroyPlc,
        AptActionKind::InitialIntrusion,
    ];

    /// Probability that an attempt of this action succeeds (Table 5).
    pub fn success_prob(&self) -> f64 {
        match self {
            AptActionKind::Compromise => 0.9,
            AptActionKind::InitialIntrusion => 0.75,
            _ => 1.0,
        }
    }

    /// Parameters `(n, p)` of the Binomial distribution the action's duration
    /// (in hours) is drawn from (Table 5).
    pub fn time_dist(&self) -> (u64, f64) {
        match self {
            AptActionKind::ScanVlan => (60, 0.9),
            AptActionKind::Compromise => (60, 0.8),
            AptActionKind::RebootPersist => (4, 0.9),
            AptActionKind::EscalatePrivilege => (22, 0.9),
            AptActionKind::CredentialPersist => (4, 0.9),
            AptActionKind::Cleanup => (4, 0.9),
            AptActionKind::DiscoverVlan => (60, 0.9),
            AptActionKind::DiscoverServer => (60, 0.9),
            AptActionKind::AnalyzeHistorian => (600, 0.9),
            AptActionKind::DiscoverPlc => (24, 0.875),
            AptActionKind::FlashFirmware => (1, 1.0),
            AptActionKind::DisruptPlc => (8, 0.9),
            AptActionKind::DestroyPlc => (1, 1.0),
            // One to two weeks of renewed social engineering.
            AptActionKind::InitialIntrusion => (336, 0.5),
        }
    }

    /// Expected duration of the action in hours (`n * p`).
    pub fn expected_duration(&self) -> f64 {
        let (n, p) = self.time_dist();
        n as f64 * p
    }

    /// Base probability that an attempt raises an IDS alert (Table 5). For
    /// actions that generate network messages this rate is multiplied by the
    /// device factor of every device the message crosses.
    pub fn alert_rate(&self) -> f64 {
        match self {
            AptActionKind::ScanVlan => 0.01,
            AptActionKind::Compromise => 0.05,
            AptActionKind::RebootPersist => 0.05,
            AptActionKind::EscalatePrivilege => 0.05,
            AptActionKind::CredentialPersist => 0.05,
            AptActionKind::Cleanup => 0.05,
            AptActionKind::DiscoverVlan => 0.05,
            AptActionKind::DiscoverServer => 0.01,
            AptActionKind::AnalyzeHistorian => 0.0,
            AptActionKind::DiscoverPlc => 0.03,
            AptActionKind::FlashFirmware => 0.5,
            AptActionKind::DisruptPlc => 0.9,
            AptActionKind::DestroyPlc => 1.0,
            AptActionKind::InitialIntrusion => 0.01,
        }
    }

    /// Whether the action sends messages across the network (and therefore
    /// has its alert rate multiplied by the device factors along the path).
    pub fn generates_traffic(&self) -> bool {
        matches!(
            self,
            AptActionKind::ScanVlan
                | AptActionKind::Compromise
                | AptActionKind::DiscoverVlan
                | AptActionKind::DiscoverServer
                | AptActionKind::DiscoverPlc
                | AptActionKind::FlashFirmware
                | AptActionKind::DisruptPlc
                | AptActionKind::DestroyPlc
        )
    }
}

impl fmt::Display for AptActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AptActionKind::ScanVlan => "scan",
            AptActionKind::Compromise => "compromise",
            AptActionKind::RebootPersist => "reboot persist",
            AptActionKind::EscalatePrivilege => "escalate privilege",
            AptActionKind::CredentialPersist => "credential persist",
            AptActionKind::Cleanup => "cleanup",
            AptActionKind::DiscoverVlan => "discover VLAN",
            AptActionKind::DiscoverServer => "discover server",
            AptActionKind::AnalyzeHistorian => "analyze historian",
            AptActionKind::DiscoverPlc => "discover PLC",
            AptActionKind::FlashFirmware => "flash firmware",
            AptActionKind::DisruptPlc => "disrupt PLC",
            AptActionKind::DestroyPlc => "destroy PLC",
            AptActionKind::InitialIntrusion => "initial intrusion",
        };
        f.write_str(s)
    }
}

/// The target of an APT action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AptTarget {
    /// A whole VLAN (scans and discovery actions).
    Vlan(VlanId),
    /// A specific computing node.
    Node(NodeId),
    /// A specific PLC.
    Plc(PlcId),
    /// No explicit target (e.g. VLAN discovery from the source node).
    None,
}

/// A single attacker action attempt: the kind, the compromised node it is
/// launched from (if any), and its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AptAction {
    /// What the attacker is attempting.
    pub kind: AptActionKind,
    /// The controlled node the action originates from. `None` only for
    /// [`AptActionKind::InitialIntrusion`], which comes from outside the
    /// modelled network.
    pub source: Option<NodeId>,
    /// What the action targets.
    pub target: AptTarget,
}

impl AptAction {
    /// Creates an action.
    pub fn new(kind: AptActionKind, source: Option<NodeId>, target: AptTarget) -> Self {
        Self {
            kind,
            source,
            target,
        }
    }

    /// The node target, if the target is a node.
    pub fn target_node(&self) -> Option<NodeId> {
        match self.target {
            AptTarget::Node(n) => Some(n),
            _ => None,
        }
    }

    /// The PLC target, if the target is a PLC.
    pub fn target_plc(&self) -> Option<PlcId> {
        match self.target {
            AptTarget::Plc(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for AptAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        match self.target {
            AptTarget::Vlan(v) => write!(f, " -> {v}")?,
            AptTarget::Node(n) => write!(f, " -> {n}")?,
            AptTarget::Plc(p) => write!(f, " -> {p}")?,
            AptTarget::None => {}
        }
        if let Some(src) = self.source {
            write!(f, " (from {src})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_success_probabilities() {
        assert_eq!(AptActionKind::ScanVlan.success_prob(), 1.0);
        assert_eq!(AptActionKind::Compromise.success_prob(), 0.9);
        assert_eq!(AptActionKind::DisruptPlc.success_prob(), 1.0);
    }

    #[test]
    fn table_5_time_distributions() {
        assert_eq!(AptActionKind::ScanVlan.time_dist(), (60, 0.9));
        assert_eq!(AptActionKind::Compromise.time_dist(), (60, 0.8));
        assert_eq!(AptActionKind::RebootPersist.time_dist(), (4, 0.9));
        assert_eq!(AptActionKind::EscalatePrivilege.time_dist(), (22, 0.9));
        assert_eq!(AptActionKind::AnalyzeHistorian.time_dist(), (600, 0.9));
        assert_eq!(AptActionKind::DiscoverPlc.time_dist(), (24, 0.875));
        assert_eq!(AptActionKind::FlashFirmware.time_dist(), (1, 1.0));
        assert_eq!(AptActionKind::DestroyPlc.time_dist(), (1, 1.0));
    }

    #[test]
    fn table_5_alert_rates() {
        assert_eq!(AptActionKind::ScanVlan.alert_rate(), 0.01);
        assert_eq!(AptActionKind::Compromise.alert_rate(), 0.05);
        assert_eq!(AptActionKind::AnalyzeHistorian.alert_rate(), 0.0);
        assert_eq!(AptActionKind::FlashFirmware.alert_rate(), 0.5);
        assert_eq!(AptActionKind::DisruptPlc.alert_rate(), 0.9);
        assert_eq!(AptActionKind::DestroyPlc.alert_rate(), 1.0);
    }

    #[test]
    fn traffic_generating_actions() {
        assert!(AptActionKind::Compromise.generates_traffic());
        assert!(AptActionKind::DisruptPlc.generates_traffic());
        assert!(!AptActionKind::Cleanup.generates_traffic());
        assert!(!AptActionKind::AnalyzeHistorian.generates_traffic());
    }

    #[test]
    fn expected_duration_is_n_times_p() {
        assert!((AptActionKind::ScanVlan.expected_duration() - 54.0).abs() < 1e-9);
        assert!((AptActionKind::AnalyzeHistorian.expected_duration() - 540.0).abs() < 1e-9);
    }

    #[test]
    fn action_accessors_and_display() {
        let a = AptAction::new(
            AptActionKind::Compromise,
            Some(NodeId::from_index(0)),
            AptTarget::Node(NodeId::from_index(3)),
        );
        assert_eq!(a.target_node(), Some(NodeId::from_index(3)));
        assert_eq!(a.target_plc(), None);
        let text = a.to_string();
        assert!(text.contains("compromise"));
        assert!(text.contains("node#3"));
        assert!(text.contains("node#0"));
    }
}
