//! APT attack parameters: objectives, vectors, thresholds and labor budgets.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The qualitative goal of the attack (§3.2, appendix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackObjective {
    /// Disrupt the ICS process. Does not require firmware compromise, so it is
    /// easier to achieve, but the impact on the ICS is smaller.
    Disrupt,
    /// Destroy plant equipment. Requires flashing PLC firmware first.
    Destroy,
}

impl fmt::Display for AttackObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackObjective::Disrupt => write!(f, "disrupt"),
            AttackObjective::Destroy => write!(f, "destroy"),
        }
    }
}

/// How the APT reaches the PLCs (§3.2, appendix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// Through the level-2 OPC server. Requires only one level-2 server, but
    /// commands cross the plant firewall and generate more alerts.
    Opc,
    /// Through the level-1 HMI nodes. Requires capturing several HMIs, but
    /// commands to the PLCs stay inside level 1.
    Hmi,
}

impl fmt::Display for AttackVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackVector::Opc => write!(f, "OPC server"),
            AttackVector::Hmi => write!(f, "level-1 HMI"),
        }
    }
}

/// Where the APT's initial foothold (and any re-entry after full eviction)
/// lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitialAccess {
    /// A phishing-style entry through a random level-2 engineering
    /// workstation (the paper's model).
    EngineeringWorkstation,
    /// An insider foothold: the attacker starts on a random level-1 HMI,
    /// already inside the operations perimeter.
    OperationsHmi,
}

impl fmt::Display for InitialAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitialAccess::EngineeringWorkstation => write!(f, "level-2 workstation"),
            InitialAccess::OperationsHmi => write!(f, "level-1 HMI (insider)"),
        }
    }
}

/// A fully-specified attack configuration for one episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AptParams {
    /// Whether the attack disrupts the process or destroys equipment.
    pub objective: AttackObjective,
    /// Whether the attack goes through the OPC server or the HMIs.
    pub vector: AttackVector,
    /// Where the initial foothold lands.
    pub initial_access: InitialAccess,
    /// Number of level-2 nodes to compromise before escalating to the next
    /// phase (also used as the number of HMIs to capture for the HMI vector).
    pub lateral_threshold: usize,
    /// Number of PLCs to discover before executing the attack.
    pub plc_threshold: usize,
    /// Maximum number of concurrently executing attacker actions (labor-hours
    /// per clock hour).
    pub labor_rate: usize,
    /// How much the APT's cleanup reduces the probability of detection:
    /// detection probabilities on cleaned nodes are multiplied by
    /// `1 - cleanup_effectiveness`. The nominal (training) value is 0.5.
    pub cleanup_effectiveness: f64,
}

impl AptParams {
    /// The default APT1 configuration from §3.2: lateral threshold 3, PLC
    /// threshold 15 when destroying / 25 when disrupting, two full-time
    /// attackers, nominal cleanup effectiveness 0.5.
    pub fn apt1(objective: AttackObjective, vector: AttackVector) -> Self {
        Self {
            objective,
            vector,
            initial_access: InitialAccess::EngineeringWorkstation,
            lateral_threshold: 3,
            plc_threshold: match objective {
                AttackObjective::Destroy => 15,
                AttackObjective::Disrupt => 25,
            },
            labor_rate: 2,
            cleanup_effectiveness: 0.5,
        }
    }

    /// The more aggressive APT2 configuration from §5: lateral threshold 1,
    /// PLC threshold 5 when destroying / 10 when disrupting. APT2 moves faster
    /// through the tactic graph but has less redundant access.
    pub fn apt2(objective: AttackObjective, vector: AttackVector) -> Self {
        Self {
            objective,
            vector,
            initial_access: InitialAccess::EngineeringWorkstation,
            lateral_threshold: 1,
            plc_threshold: match objective {
                AttackObjective::Destroy => 5,
                AttackObjective::Disrupt => 10,
            },
            labor_rate: 2,
            cleanup_effectiveness: 0.5,
        }
    }
}

/// A distribution over attack configurations, sampled once per episode.
///
/// The paper's evaluation draws attack objective and vector per episode; this
/// profile captures the quantitative parameters shared by every draw and
/// optionally pins objective or vector for targeted experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AptProfile {
    /// Lateral threshold used for every sampled configuration.
    pub lateral_threshold: usize,
    /// PLC threshold when the sampled objective is destroy.
    pub plc_threshold_destroy: usize,
    /// PLC threshold when the sampled objective is disrupt.
    pub plc_threshold_disrupt: usize,
    /// Labor budget.
    pub labor_rate: usize,
    /// Cleanup effectiveness (see [`AptParams::cleanup_effectiveness`]).
    pub cleanup_effectiveness: f64,
    /// Where the initial foothold lands.
    pub initial_access: InitialAccess,
    /// Pin the objective instead of sampling it.
    pub fixed_objective: Option<AttackObjective>,
    /// Pin the vector instead of sampling it.
    pub fixed_vector: Option<AttackVector>,
}

impl AptProfile {
    /// The nominal attacker the ACSO is trained against (APT1).
    pub fn apt1() -> Self {
        Self {
            lateral_threshold: 3,
            plc_threshold_destroy: 15,
            plc_threshold_disrupt: 25,
            labor_rate: 2,
            cleanup_effectiveness: 0.5,
            initial_access: InitialAccess::EngineeringWorkstation,
            fixed_objective: None,
            fixed_vector: None,
        }
    }

    /// The aggressive attacker used for the robustness experiment (APT2).
    pub fn apt2() -> Self {
        Self {
            lateral_threshold: 1,
            plc_threshold_destroy: 5,
            plc_threshold_disrupt: 10,
            ..Self::apt1()
        }
    }

    /// A stealth archetype: a single patient operator with very effective
    /// anti-forensics. Few actions per hour and a 0.9 cleanup effectiveness
    /// make the campaign much harder to spot in the alert stream.
    pub fn stealth() -> Self {
        Self {
            labor_rate: 1,
            cleanup_effectiveness: 0.9,
            ..Self::apt1()
        }
    }

    /// A smash-and-grab archetype: a large crew racing to the PLCs with no
    /// regard for noise. Double the labor budget, minimal redundancy, low
    /// PLC thresholds, and barely any cleanup.
    pub fn smash_and_grab() -> Self {
        Self {
            lateral_threshold: 1,
            plc_threshold_destroy: 5,
            plc_threshold_disrupt: 10,
            labor_rate: 4,
            cleanup_effectiveness: 0.1,
            ..Self::apt1()
        }
    }

    /// An insider archetype: APT1 parameters, but the initial foothold lands
    /// on a level-1 HMI inside the operations perimeter, skipping the noisy
    /// engineering-level traversal.
    pub fn insider() -> Self {
        Self {
            initial_access: InitialAccess::OperationsHmi,
            ..Self::apt1()
        }
    }

    /// A disruption-objective variant of APT1: the attacker always disrupts
    /// (never flashes firmware), so attacks land sooner but are recoverable
    /// with cheap PLC resets.
    pub fn disruption() -> Self {
        Self {
            fixed_objective: Some(AttackObjective::Disrupt),
            ..Self::apt1()
        }
    }

    /// Returns a copy with a different cleanup effectiveness (the Fig. 6
    /// perturbation).
    pub fn with_cleanup_effectiveness(mut self, effectiveness: f64) -> Self {
        self.cleanup_effectiveness = effectiveness;
        self
    }

    /// Returns a copy with the objective pinned.
    pub fn with_objective(mut self, objective: AttackObjective) -> Self {
        self.fixed_objective = Some(objective);
        self
    }

    /// Returns a copy with the vector pinned.
    pub fn with_vector(mut self, vector: AttackVector) -> Self {
        self.fixed_vector = Some(vector);
        self
    }

    /// Samples a concrete configuration for one episode.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> AptParams {
        let objective = self.fixed_objective.unwrap_or(if rng.gen_bool(0.5) {
            AttackObjective::Destroy
        } else {
            AttackObjective::Disrupt
        });
        let vector = self.fixed_vector.unwrap_or(if rng.gen_bool(0.5) {
            AttackVector::Opc
        } else {
            AttackVector::Hmi
        });
        AptParams {
            objective,
            vector,
            initial_access: self.initial_access,
            lateral_threshold: self.lateral_threshold,
            plc_threshold: match objective {
                AttackObjective::Destroy => self.plc_threshold_destroy,
                AttackObjective::Disrupt => self.plc_threshold_disrupt,
            },
            labor_rate: self.labor_rate,
            cleanup_effectiveness: self.cleanup_effectiveness,
        }
    }
}

impl Default for AptProfile {
    fn default() -> Self {
        Self::apt1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn apt1_matches_paper_defaults() {
        let p = AptParams::apt1(AttackObjective::Destroy, AttackVector::Opc);
        assert_eq!(p.lateral_threshold, 3);
        assert_eq!(p.plc_threshold, 15);
        assert_eq!(p.labor_rate, 2);
        assert_eq!(p.cleanup_effectiveness, 0.5);
        let p = AptParams::apt1(AttackObjective::Disrupt, AttackVector::Hmi);
        assert_eq!(p.plc_threshold, 25);
    }

    #[test]
    fn apt2_matches_paper_perturbation() {
        let p = AptParams::apt2(AttackObjective::Destroy, AttackVector::Opc);
        assert_eq!(p.lateral_threshold, 1);
        assert_eq!(p.plc_threshold, 5);
        let p = AptParams::apt2(AttackObjective::Disrupt, AttackVector::Hmi);
        assert_eq!(p.plc_threshold, 10);
    }

    #[test]
    fn profile_sampling_respects_pins() {
        let mut rng = StdRng::seed_from_u64(1);
        let profile = AptProfile::apt1()
            .with_objective(AttackObjective::Disrupt)
            .with_vector(AttackVector::Hmi);
        for _ in 0..10 {
            let p = profile.sample(&mut rng);
            assert_eq!(p.objective, AttackObjective::Disrupt);
            assert_eq!(p.vector, AttackVector::Hmi);
            assert_eq!(p.plc_threshold, 25);
        }
    }

    #[test]
    fn profile_sampling_varies_when_unpinned() {
        let mut rng = StdRng::seed_from_u64(2);
        let profile = AptProfile::apt1();
        let mut objectives = std::collections::HashSet::new();
        let mut vectors = std::collections::HashSet::new();
        for _ in 0..50 {
            let p = profile.sample(&mut rng);
            objectives.insert(format!("{}", p.objective));
            vectors.insert(format!("{}", p.vector));
        }
        assert_eq!(objectives.len(), 2);
        assert_eq!(vectors.len(), 2);
    }

    #[test]
    fn archetypes_differ_from_apt1_in_the_documented_knobs() {
        let apt1 = AptProfile::apt1();

        let stealth = AptProfile::stealth();
        assert_eq!(stealth.labor_rate, 1);
        assert_eq!(stealth.cleanup_effectiveness, 0.9);
        assert_eq!(stealth.lateral_threshold, apt1.lateral_threshold);

        let smash = AptProfile::smash_and_grab();
        assert_eq!(smash.labor_rate, 4);
        assert_eq!(smash.lateral_threshold, 1);
        assert!(smash.cleanup_effectiveness < apt1.cleanup_effectiveness);
        assert!(smash.plc_threshold_destroy < apt1.plc_threshold_destroy);

        let insider = AptProfile::insider();
        assert_eq!(insider.initial_access, InitialAccess::OperationsHmi);
        assert_eq!(insider.labor_rate, apt1.labor_rate);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(
            insider.sample(&mut rng).initial_access,
            InitialAccess::OperationsHmi
        );

        let disruption = AptProfile::disruption();
        assert_eq!(disruption.fixed_objective, Some(AttackObjective::Disrupt));
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..5 {
            assert_eq!(
                disruption.sample(&mut rng).objective,
                AttackObjective::Disrupt
            );
        }
    }

    #[test]
    fn initial_access_display() {
        assert!(InitialAccess::EngineeringWorkstation
            .to_string()
            .contains("workstation"));
        assert!(InitialAccess::OperationsHmi.to_string().contains("insider"));
    }

    #[test]
    fn cleanup_effectiveness_override() {
        let profile = AptProfile::apt1().with_cleanup_effectiveness(0.9);
        assert_eq!(profile.cleanup_effectiveness, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(profile.sample(&mut rng).cleanup_effectiveness, 0.9);
    }
}
