//! The attacker policy interface.
//!
//! Any attacker policy can be plugged into the environment by implementing
//! [`AptPolicy`]; the baseline finite-state-machine attacker of the paper is
//! [`crate::apt::FsmAptPolicy`].

use crate::apt::action::AptAction;
use crate::apt::knowledge::AptKnowledge;
use crate::apt::params::AptParams;
use crate::state::NetworkState;
use ics_net::Topology;
use rand::rngs::StdRng;

/// Everything the attacker is allowed to see when deciding its next actions.
///
/// The attacker has ground-truth knowledge of the nodes it controls and of
/// its own accumulated discoveries, but no visibility into defender actions
/// that have not yet affected nodes it controls.
#[derive(Debug)]
pub struct AptContext<'a> {
    /// The static network topology.
    pub topology: &'a Topology,
    /// The ground-truth network state. Policies should only read facts about
    /// nodes they control (enforced by convention, as in the paper).
    pub state: &'a NetworkState,
    /// The attacker's accumulated discoveries.
    pub knowledge: &'a AptKnowledge,
    /// The episode's attack configuration.
    pub params: &'a AptParams,
    /// Actions already in flight (to avoid duplicating work).
    pub in_progress: &'a [AptAction],
    /// Number of additional actions the labor budget allows this hour.
    pub free_labor: usize,
    /// Current simulation hour.
    pub time: u64,
}

/// An attacker decision policy.
///
/// Policies are called once per simulated hour and may start up to
/// `free_labor` new actions. The environment handles success sampling,
/// durations, alerts and effects.
pub trait AptPolicy: Send {
    /// Resets internal state at the start of an episode.
    fn reset(&mut self, params: &AptParams);

    /// Chooses up to `ctx.free_labor` new actions to start this hour.
    fn decide(&mut self, ctx: &AptContext<'_>, rng: &mut StdRng) -> Vec<AptAction>;

    /// A short human-readable description of the policy's current phase, used
    /// for diagnostics and logging.
    fn phase_name(&self) -> &'static str {
        "unknown"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apt::params::{AttackObjective, AttackVector};
    use ics_net::TopologySpec;
    use rand::SeedableRng;

    /// A do-nothing policy used to verify the trait is object safe and the
    /// context is usable.
    struct IdleApt;

    impl AptPolicy for IdleApt {
        fn reset(&mut self, _params: &AptParams) {}
        fn decide(&mut self, ctx: &AptContext<'_>, _rng: &mut StdRng) -> Vec<AptAction> {
            assert!(ctx.free_labor <= ctx.params.labor_rate);
            Vec::new()
        }
        fn phase_name(&self) -> &'static str {
            "idle"
        }
    }

    #[test]
    fn trait_is_object_safe_and_callable() {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let state = NetworkState::new(&topo);
        let knowledge = AptKnowledge::new();
        let params = AptParams::apt1(AttackObjective::Disrupt, AttackVector::Opc);
        let mut policy: Box<dyn AptPolicy> = Box::new(IdleApt);
        policy.reset(&params);
        let ctx = AptContext {
            topology: &topo,
            state: &state,
            knowledge: &knowledge,
            params: &params,
            in_progress: &[],
            free_labor: 2,
            time: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(policy.decide(&ctx, &mut rng).is_empty());
        assert_eq!(policy.phase_name(), "idle");
    }
}
