//! Scenarios: a named, tagged, fully-specified simulation configuration.
//!
//! A [`Scenario`] bundles a [`SimConfig`] with human-facing metadata (name,
//! description, difficulty tags). Scenarios come from three places:
//!
//! * the built-in registry in `acso-core` (the paper presets plus attacker /
//!   IDS / topology variants);
//! * [`Scenario::from_seed`] — procedural generation where every randomized
//!   component draws from an independent Mersenne-prime
//!   ([`acso_runtime::MERSENNE_61`]) hash stream of the scenario identifier,
//!   so a scenario is exactly reproducible from its `u64` id alone;
//! * TOML files, via [`Scenario::to_toml`] / [`Scenario::from_toml`].
//!
//! The TOML support is hand-rolled against a small, documented subset of the
//! format (tables, `key = value` pairs, strings, string arrays, numbers,
//! booleans) because the workspace's vendored `serde` stand-in provides no-op
//! derives only (see `vendor/README.md`).

use crate::apt::{AptProfile, AttackObjective, AttackVector, InitialAccess};
use crate::config::SimConfig;
use crate::ids::IdsConfig;
use crate::reward::{RewardConfig, ShapingConfig};
use acso_runtime::mersenne_stream;
use ics_net::{DeviceFactors, ServerMix, TopologyParams, TopologySpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Salts separating the independent hash streams a generated scenario draws
/// from (see [`mersenne_stream`]).
mod salt {
    pub const TOPOLOGY: u64 = 0x01;
    pub const APT: u64 = 0x02;
    pub const IDS: u64 = 0x03;
    pub const HORIZON: u64 = 0x04;
    pub const EPISODES: u64 = 0x05;
}

/// A named simulation scenario: configuration plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique name (registry key, CLI argument, results-table row label).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Free-form difficulty/category tags (e.g. `"paper"`, `"attacker"`,
    /// `"hard"`).
    pub tags: Vec<String>,
    /// The full simulation configuration.
    pub config: SimConfig,
}

impl Scenario {
    /// Creates a scenario with no tags.
    pub fn new(name: impl Into<String>, description: impl Into<String>, config: SimConfig) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            tags: Vec::new(),
            config,
        }
    }

    /// Returns the scenario with the given tags.
    pub fn with_tags<I, S>(mut self, tags: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.tags = tags.into_iter().map(Into::into).collect();
        self
    }

    /// Whether the scenario carries a tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }

    /// Procedurally generates a scenario from a `u64` identifier.
    ///
    /// Each randomized component (topology shape, attacker archetype, IDS
    /// tier, horizon, episode seed base) is derived from its own
    /// Mersenne-prime hash stream of `seed`, so the scenario — topology, APT
    /// parameters and episode transcripts — is exactly reproducible from the
    /// identifier, and composes with the rollout engine's
    /// `episode_seed = base ^ index` scheme.
    pub fn from_seed(seed: u64) -> Self {
        let mut topo_rng = StdRng::seed_from_u64(mersenne_stream(seed, salt::TOPOLOGY));
        let l2_segments = topo_rng.gen_range(1usize..=3);
        let l1_segments = topo_rng.gen_range(1usize..=2);
        let params = TopologyParams {
            levels: 2,
            vlans_per_level: [l1_segments, l2_segments],
            nodes_per_vlan: [
                topo_rng.gen_range(2usize..=6),
                topo_rng.gen_range(4usize..=20),
            ],
            servers: ServerMix {
                opc: true,
                historian: true,
                domain_controller: topo_rng.gen_bool(0.5),
            },
            plcs: topo_rng.gen_range(10usize..=80),
            device_factors: DeviceFactors {
                switch: 1.0,
                router: *[1.5, 2.0, 3.0]
                    .choose(&mut topo_rng)
                    .expect("non-empty factor list"),
                firewall: *[4.0, 5.0, 8.0]
                    .choose(&mut topo_rng)
                    .expect("non-empty factor list"),
            },
            // Fixed (not drawn) so generated scenarios keep their historical
            // RNG streams and transcripts.
            host_budget: ics_net::MAX_HOSTS_PER_SEGMENT,
        };
        let spec = params
            .into_spec()
            .expect("generated topology parameters stay inside validated ranges");

        let mut apt_rng = StdRng::seed_from_u64(mersenne_stream(seed, salt::APT));
        let archetypes: [(&str, AptProfile); 6] = [
            ("apt1", AptProfile::apt1()),
            ("apt2", AptProfile::apt2()),
            ("stealth", AptProfile::stealth()),
            ("smash-and-grab", AptProfile::smash_and_grab()),
            ("insider", AptProfile::insider()),
            ("disruption", AptProfile::disruption()),
        ];
        let (apt_name, apt) = archetypes[apt_rng.gen_range(0usize..archetypes.len())];

        let mut ids_rng = StdRng::seed_from_u64(mersenne_stream(seed, salt::IDS));
        let tiers: [(&str, IdsConfig); 3] = [
            ("degraded", IdsConfig::degraded()),
            ("baseline", IdsConfig::paper_baseline()),
            ("enhanced", IdsConfig::enhanced()),
        ];
        let (ids_name, ids) = tiers[ids_rng.gen_range(0usize..tiers.len())];

        let mut horizon_rng = StdRng::seed_from_u64(mersenne_stream(seed, salt::HORIZON));
        let max_time = horizon_rng.gen_range(15u64..=40) * 100;

        let config = SimConfig {
            topology: spec.clone(),
            apt,
            ids,
            reward: RewardConfig::paper().with_max_time(max_time),
            shaping: ShapingConfig::paper(),
            seed: mersenne_stream(seed, salt::EPISODES),
            plc_discovery_batch: 5,
        };
        Scenario {
            // Decimal, matching the `--gen-seed N` -> `seed-N` contract in
            // the scenario_sweep CLI and README.
            name: format!("seed-{seed}"),
            description: format!(
                "generated: {} ws / {} hmi / {} plc over {}+{} segments, {apt_name} attacker, \
                 {ids_name} IDS, {max_time} h",
                spec.l2_workstations, spec.l1_hmis, spec.plcs, spec.l2_segments, spec.l1_segments,
            ),
            tags: vec!["generated".to_string()],
            config,
        }
    }

    /// Serializes the scenario to the TOML subset documented at module level.
    pub fn to_toml(&self) -> String {
        let c = &self.config;
        let t = &c.topology;
        let a = &c.apt;
        let mut out = String::new();
        use fmt::Write as _;

        writeln!(out, "[scenario]").unwrap();
        writeln!(out, "name = {}", toml_str(&self.name)).unwrap();
        writeln!(out, "description = {}", toml_str(&self.description)).unwrap();
        let tags: Vec<String> = self.tags.iter().map(|t| toml_str(t)).collect();
        writeln!(out, "tags = [{}]", tags.join(", ")).unwrap();
        writeln!(out, "seed = {}", c.seed).unwrap();
        writeln!(out, "plc_discovery_batch = {}", c.plc_discovery_batch).unwrap();

        writeln!(out, "\n[topology]").unwrap();
        writeln!(out, "l2_workstations = {}", t.l2_workstations).unwrap();
        writeln!(out, "opc_server = {}", t.opc_server).unwrap();
        writeln!(out, "historian_server = {}", t.historian_server).unwrap();
        writeln!(out, "domain_controller = {}", t.domain_controller).unwrap();
        writeln!(out, "l1_hmis = {}", t.l1_hmis).unwrap();
        writeln!(out, "plcs = {}", t.plcs).unwrap();
        writeln!(out, "l2_segments = {}", t.l2_segments).unwrap();
        writeln!(out, "l1_segments = {}", t.l1_segments).unwrap();
        writeln!(out, "host_budget = {}", t.host_budget).unwrap();

        writeln!(out, "\n[topology.device_factors]").unwrap();
        writeln!(out, "switch = {}", fmt_f64(t.device_factors.switch)).unwrap();
        writeln!(out, "router = {}", fmt_f64(t.device_factors.router)).unwrap();
        writeln!(out, "firewall = {}", fmt_f64(t.device_factors.firewall)).unwrap();

        writeln!(out, "\n[apt]").unwrap();
        writeln!(out, "lateral_threshold = {}", a.lateral_threshold).unwrap();
        writeln!(out, "plc_threshold_destroy = {}", a.plc_threshold_destroy).unwrap();
        writeln!(out, "plc_threshold_disrupt = {}", a.plc_threshold_disrupt).unwrap();
        writeln!(out, "labor_rate = {}", a.labor_rate).unwrap();
        writeln!(
            out,
            "cleanup_effectiveness = {}",
            fmt_f64(a.cleanup_effectiveness)
        )
        .unwrap();
        writeln!(
            out,
            "initial_access = {}",
            toml_str(initial_access_key(a.initial_access))
        )
        .unwrap();
        if let Some(objective) = a.fixed_objective {
            writeln!(
                out,
                "fixed_objective = {}",
                toml_str(objective_key(objective))
            )
            .unwrap();
        }
        if let Some(vector) = a.fixed_vector {
            writeln!(out, "fixed_vector = {}", toml_str(vector_key(vector))).unwrap();
        }

        writeln!(out, "\n[ids]").unwrap();
        writeln!(
            out,
            "passive_alert_prob = {}",
            fmt_f64(c.ids.passive_alert_prob)
        )
        .unwrap();
        for (key, value) in [
            ("false_alert_prob_sev1", c.ids.false_alert_prob_sev1),
            ("false_alert_prob_sev2", c.ids.false_alert_prob_sev2),
            ("false_alert_prob_sev3", c.ids.false_alert_prob_sev3),
        ] {
            writeln!(out, "{key} = {}", fmt_f64(value)).unwrap();
        }

        writeln!(out, "\n[reward]").unwrap();
        writeln!(out, "lambda = {}", fmt_f64(c.reward.lambda)).unwrap();
        writeln!(out, "gamma = {}", fmt_f64(c.reward.gamma)).unwrap();
        writeln!(out, "max_time = {}", c.reward.max_time).unwrap();
        writeln!(
            out,
            "disrupted_penalty = {}",
            fmt_f64(c.reward.disrupted_penalty)
        )
        .unwrap();
        writeln!(
            out,
            "destroyed_penalty = {}",
            fmt_f64(c.reward.destroyed_penalty)
        )
        .unwrap();

        writeln!(out, "\n[shaping]").unwrap();
        writeln!(
            out,
            "workstation_weight = {}",
            fmt_f64(c.shaping.workstation_weight)
        )
        .unwrap();
        writeln!(out, "server_weight = {}", fmt_f64(c.shaping.server_weight)).unwrap();
        writeln!(out, "gamma = {}", fmt_f64(c.shaping.gamma)).unwrap();
        writeln!(out, "weight = {}", fmt_f64(c.shaping.weight)).unwrap();

        out
    }

    /// Parses a scenario from the TOML subset written by
    /// [`Scenario::to_toml`]. Missing sections and keys fall back to the
    /// paper defaults, so a minimal file only needs a `[scenario]` name.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] on syntax errors, type mismatches, unknown
    /// enum keys, or a topology spec that fails validation.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        let doc = TomlDoc::parse(text)?;
        // A typo must not silently fall back to a paper default: reject any
        // table or key outside the documented schema.
        doc.reject_unknown(&[
            (
                "scenario",
                &["name", "description", "tags", "seed", "plc_discovery_batch"],
            ),
            (
                "topology",
                &[
                    "l2_workstations",
                    "opc_server",
                    "historian_server",
                    "domain_controller",
                    "l1_hmis",
                    "plcs",
                    "l2_segments",
                    "l1_segments",
                    "host_budget",
                ],
            ),
            ("topology.device_factors", &["switch", "router", "firewall"]),
            (
                "apt",
                &[
                    "lateral_threshold",
                    "plc_threshold_destroy",
                    "plc_threshold_disrupt",
                    "labor_rate",
                    "cleanup_effectiveness",
                    "initial_access",
                    "fixed_objective",
                    "fixed_vector",
                ],
            ),
            (
                "ids",
                &[
                    "passive_alert_prob",
                    "false_alert_prob_sev1",
                    "false_alert_prob_sev2",
                    "false_alert_prob_sev3",
                ],
            ),
            (
                "reward",
                &[
                    "lambda",
                    "gamma",
                    "max_time",
                    "disrupted_penalty",
                    "destroyed_penalty",
                ],
            ),
            (
                "shaping",
                &["workstation_weight", "server_weight", "gamma", "weight"],
            ),
        ])?;
        let defaults = SimConfig::full();

        let name = doc.str_or("scenario", "name", "")?;
        if name.is_empty() {
            return Err(ScenarioError::new("missing [scenario] name"));
        }
        let description = doc.str_or("scenario", "description", "")?;
        let tags = doc.str_array_or("scenario", "tags")?;
        let seed = doc.u64_or("scenario", "seed", defaults.seed)?;
        let plc_discovery_batch = doc.usize_or(
            "scenario",
            "plc_discovery_batch",
            defaults.plc_discovery_batch,
        )?;

        let dt = defaults.topology.clone();
        let topology = TopologySpec {
            l2_workstations: doc.usize_or("topology", "l2_workstations", dt.l2_workstations)?,
            opc_server: doc.bool_or("topology", "opc_server", dt.opc_server)?,
            historian_server: doc.bool_or("topology", "historian_server", dt.historian_server)?,
            domain_controller: doc.bool_or(
                "topology",
                "domain_controller",
                dt.domain_controller,
            )?,
            l1_hmis: doc.usize_or("topology", "l1_hmis", dt.l1_hmis)?,
            plcs: doc.usize_or("topology", "plcs", dt.plcs)?,
            l2_segments: doc.usize_or("topology", "l2_segments", dt.l2_segments)?,
            l1_segments: doc.usize_or("topology", "l1_segments", dt.l1_segments)?,
            host_budget: doc.usize_or("topology", "host_budget", dt.host_budget)?,
            device_factors: DeviceFactors {
                switch: doc.f64_or("topology.device_factors", "switch", 1.0)?,
                router: doc.f64_or("topology.device_factors", "router", 2.0)?,
                firewall: doc.f64_or("topology.device_factors", "firewall", 5.0)?,
            },
        };
        topology
            .validate()
            .map_err(|e| ScenarioError::new(format!("invalid [topology]: {e}")))?;

        let da = defaults.apt;
        let apt = AptProfile {
            lateral_threshold: doc.usize_or("apt", "lateral_threshold", da.lateral_threshold)?,
            plc_threshold_destroy: doc.usize_or(
                "apt",
                "plc_threshold_destroy",
                da.plc_threshold_destroy,
            )?,
            plc_threshold_disrupt: doc.usize_or(
                "apt",
                "plc_threshold_disrupt",
                da.plc_threshold_disrupt,
            )?,
            labor_rate: doc.usize_or("apt", "labor_rate", da.labor_rate)?,
            cleanup_effectiveness: doc.f64_or(
                "apt",
                "cleanup_effectiveness",
                da.cleanup_effectiveness,
            )?,
            initial_access: match doc
                .str_or(
                    "apt",
                    "initial_access",
                    initial_access_key(da.initial_access),
                )?
                .as_str()
            {
                "engineering-workstation" => InitialAccess::EngineeringWorkstation,
                "operations-hmi" => InitialAccess::OperationsHmi,
                other => {
                    return Err(ScenarioError::new(format!(
                        "unknown initial_access `{other}`"
                    )))
                }
            },
            fixed_objective: match doc.str_or("apt", "fixed_objective", "")?.as_str() {
                "" => None,
                "disrupt" => Some(AttackObjective::Disrupt),
                "destroy" => Some(AttackObjective::Destroy),
                other => {
                    return Err(ScenarioError::new(format!(
                        "unknown fixed_objective `{other}`"
                    )))
                }
            },
            fixed_vector: match doc.str_or("apt", "fixed_vector", "")?.as_str() {
                "" => None,
                "opc" => Some(AttackVector::Opc),
                "hmi" => Some(AttackVector::Hmi),
                other => {
                    return Err(ScenarioError::new(format!(
                        "unknown fixed_vector `{other}`"
                    )))
                }
            },
        };

        let di = defaults.ids;
        let ids = IdsConfig {
            passive_alert_prob: doc.f64_or("ids", "passive_alert_prob", di.passive_alert_prob)?,
            false_alert_prob_sev1: doc.f64_or(
                "ids",
                "false_alert_prob_sev1",
                di.false_alert_prob_sev1,
            )?,
            false_alert_prob_sev2: doc.f64_or(
                "ids",
                "false_alert_prob_sev2",
                di.false_alert_prob_sev2,
            )?,
            false_alert_prob_sev3: doc.f64_or(
                "ids",
                "false_alert_prob_sev3",
                di.false_alert_prob_sev3,
            )?,
        };

        let dr = defaults.reward;
        let reward = RewardConfig {
            lambda: doc.f64_or("reward", "lambda", dr.lambda)?,
            gamma: doc.f64_or("reward", "gamma", dr.gamma)?,
            max_time: doc.u64_or("reward", "max_time", dr.max_time)?,
            disrupted_penalty: doc.f64_or("reward", "disrupted_penalty", dr.disrupted_penalty)?,
            destroyed_penalty: doc.f64_or("reward", "destroyed_penalty", dr.destroyed_penalty)?,
        };

        let ds = defaults.shaping;
        let shaping = ShapingConfig {
            workstation_weight: doc.f64_or(
                "shaping",
                "workstation_weight",
                ds.workstation_weight,
            )?,
            server_weight: doc.f64_or("shaping", "server_weight", ds.server_weight)?,
            gamma: doc.f64_or("shaping", "gamma", ds.gamma)?,
            weight: doc.f64_or("shaping", "weight", ds.weight)?,
        };

        Ok(Scenario {
            name,
            description,
            tags,
            config: SimConfig {
                topology,
                apt,
                ids,
                reward,
                shaping,
                seed,
                plc_discovery_batch,
            },
        })
    }
}

/// Stable string keys for the APT enums used in TOML files.
fn initial_access_key(access: InitialAccess) -> &'static str {
    match access {
        InitialAccess::EngineeringWorkstation => "engineering-workstation",
        InitialAccess::OperationsHmi => "operations-hmi",
    }
}

fn objective_key(objective: AttackObjective) -> &'static str {
    match objective {
        AttackObjective::Disrupt => "disrupt",
        AttackObjective::Destroy => "destroy",
    }
}

fn vector_key(vector: AttackVector) -> &'static str {
    match vector {
        AttackVector::Opc => "opc",
        AttackVector::Hmi => "hmi",
    }
}

/// Formats an `f64` so it parses back bit-identically and is always
/// recognisable as a float (a trailing `.0` for integral values).
fn fmt_f64(value: f64) -> String {
    let s = format!("{value}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Quotes a TOML basic string.
fn toml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Error produced when parsing a scenario TOML file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    message: String,
}

impl ScenarioError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario toml: {}", self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Bool(bool),
    Int(u64),
    Float(f64),
    Str(String),
    StrArray(Vec<String>),
}

/// A parsed TOML document: `table name -> key -> value`.
#[derive(Debug, Default)]
struct TomlDoc {
    tables: BTreeMap<String, BTreeMap<String, TomlValue>>,
}

impl TomlDoc {
    fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut doc = TomlDoc::default();
        let mut table = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or_else(|| {
                    ScenarioError::new(format!("line {}: unterminated table header", lineno + 1))
                })?;
                table = header.trim().to_string();
                doc.tables.entry(table.clone()).or_default();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ScenarioError::new(format!("line {}: expected `key = value`", lineno + 1))
            })?;
            let value = parse_value(value.trim())
                .map_err(|e| ScenarioError::new(format!("line {}: {e}", lineno + 1)))?;
            doc.tables
                .entry(table.clone())
                .or_default()
                .insert(key.trim().to_string(), value);
        }
        Ok(doc)
    }

    fn get(&self, table: &str, key: &str) -> Option<&TomlValue> {
        self.tables.get(table).and_then(|t| t.get(key))
    }

    /// Rejects tables and keys outside `schema` (pairs of table name and
    /// allowed keys), so typos fail loudly instead of silently falling back
    /// to defaults.
    fn reject_unknown(&self, schema: &[(&str, &[&str])]) -> Result<(), ScenarioError> {
        for (table, keys) in &self.tables {
            let Some((_, allowed)) = schema.iter().find(|(name, _)| name == table) else {
                return Err(ScenarioError::new(if table.is_empty() {
                    "keys must live under a [table] header".to_string()
                } else {
                    format!("unknown table `[{table}]`")
                }));
            };
            for key in keys.keys() {
                if !allowed.contains(&key.as_str()) {
                    return Err(ScenarioError::new(format!(
                        "unknown key `{key}` in `[{table}]`"
                    )));
                }
            }
        }
        Ok(())
    }

    fn bool_or(&self, table: &str, key: &str, default: bool) -> Result<bool, ScenarioError> {
        match self.get(table, key) {
            None => Ok(default),
            Some(TomlValue::Bool(b)) => Ok(*b),
            Some(_) => Err(type_error(table, key, "a boolean")),
        }
    }

    fn u64_or(&self, table: &str, key: &str, default: u64) -> Result<u64, ScenarioError> {
        match self.get(table, key) {
            None => Ok(default),
            Some(TomlValue::Int(i)) => Ok(*i),
            Some(_) => Err(type_error(table, key, "an integer")),
        }
    }

    fn usize_or(&self, table: &str, key: &str, default: usize) -> Result<usize, ScenarioError> {
        Ok(self.u64_or(table, key, default as u64)? as usize)
    }

    fn f64_or(&self, table: &str, key: &str, default: f64) -> Result<f64, ScenarioError> {
        match self.get(table, key) {
            None => Ok(default),
            Some(TomlValue::Float(f)) => Ok(*f),
            Some(TomlValue::Int(i)) => Ok(*i as f64),
            Some(_) => Err(type_error(table, key, "a number")),
        }
    }

    fn str_or(&self, table: &str, key: &str, default: &str) -> Result<String, ScenarioError> {
        match self.get(table, key) {
            None => Ok(default.to_string()),
            Some(TomlValue::Str(s)) => Ok(s.clone()),
            Some(_) => Err(type_error(table, key, "a string")),
        }
    }

    fn str_array_or(&self, table: &str, key: &str) -> Result<Vec<String>, ScenarioError> {
        match self.get(table, key) {
            None => Ok(Vec::new()),
            Some(TomlValue::StrArray(v)) => Ok(v.clone()),
            Some(_) => Err(type_error(table, key, "an array of strings")),
        }
    }
}

fn type_error(table: &str, key: &str, expected: &str) -> ScenarioError {
    ScenarioError::new(format!("[{table}] {key}: expected {expected}"))
}

/// Strips a `#` comment, respecting string quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    if text == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if text == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if text.starts_with('"') {
        return Ok(TomlValue::Str(parse_string(text)?));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?
            .trim();
        if inner.is_empty() {
            return Ok(TomlValue::StrArray(Vec::new()));
        }
        let mut items = Vec::new();
        for item in split_array_items(inner)? {
            items.push(parse_string(item.trim())?);
        }
        return Ok(TomlValue::StrArray(items));
    }
    if text.contains('.') || text.contains('e') || text.contains('E') {
        return text
            .parse::<f64>()
            .map(TomlValue::Float)
            .map_err(|e| format!("bad float `{text}`: {e}"));
    }
    text.parse::<u64>()
        .map(TomlValue::Int)
        .map_err(|e| format!("bad integer `{text}`: {e}"))
}

/// Splits a `"a", "b, c"` array body on commas outside strings.
fn split_array_items(inner: &str) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string in array".to_string());
    }
    items.push(&inner[start..]);
    Ok(items)
}

fn parse_string(text: &str) -> Result<String, String> {
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{text}`"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(format!("unsupported escape `\\{other}`")),
            None => return Err("dangling `\\` at end of string".to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_valid() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = Scenario::from_seed(seed);
            let b = Scenario::from_seed(seed);
            assert_eq!(a, b);
            assert!(a.config.topology.validate().is_ok());
            assert!(a.has_tag("generated"));
            assert!(a.name.starts_with("seed-"));
        }
        assert_ne!(
            Scenario::from_seed(1).config.seed,
            Scenario::from_seed(2).config.seed
        );
    }

    #[test]
    fn from_seed_varies_components_across_seeds() {
        let mut shapes = std::collections::HashSet::new();
        let mut labor_rates = std::collections::HashSet::new();
        for seed in 0..40u64 {
            let s = Scenario::from_seed(seed);
            shapes.insert((
                s.config.topology.l2_workstations,
                s.config.topology.plcs,
                s.config.topology.l2_segments,
            ));
            labor_rates.insert(s.config.apt.labor_rate);
        }
        assert!(shapes.len() > 20, "only {} distinct shapes", shapes.len());
        assert!(labor_rates.len() > 1);
    }

    #[test]
    fn toml_round_trips_paper_preset() {
        let scenario = Scenario::new("paper-full", "the Fig. 2 network", SimConfig::full())
            .with_tags(["paper"]);
        let toml = scenario.to_toml();
        let parsed = Scenario::from_toml(&toml).unwrap();
        assert_eq!(parsed, scenario);
    }

    #[test]
    fn toml_round_trips_generated_scenarios() {
        for seed in 0..20u64 {
            let scenario = Scenario::from_seed(seed);
            let parsed = Scenario::from_toml(&scenario.to_toml()).unwrap();
            assert_eq!(parsed, scenario, "seed {seed}");
        }
    }

    #[test]
    fn toml_round_trips_pinned_apt_enums() {
        let mut scenario = Scenario::new("pinned", "", SimConfig::tiny());
        scenario.config.apt = AptProfile::insider()
            .with_objective(AttackObjective::Destroy)
            .with_vector(AttackVector::Hmi);
        let parsed = Scenario::from_toml(&scenario.to_toml()).unwrap();
        assert_eq!(parsed, scenario);
    }

    #[test]
    fn minimal_toml_uses_paper_defaults() {
        let scenario = Scenario::from_toml("[scenario]\nname = \"bare\"\n").unwrap();
        assert_eq!(scenario.name, "bare");
        assert_eq!(scenario.config, SimConfig::full());
    }

    #[test]
    fn toml_comments_and_spacing_are_tolerated() {
        let text = r##"
# a custom scenario
[scenario]
name = "commented"   # inline comment
tags = ["a", "b # not a comment"]

[topology]
plcs = 12
"##;
        let scenario = Scenario::from_toml(text).unwrap();
        assert_eq!(scenario.name, "commented");
        assert_eq!(scenario.tags, vec!["a", "b # not a comment"]);
        assert_eq!(scenario.config.topology.plcs, 12);
    }

    #[test]
    fn toml_errors_are_descriptive() {
        assert!(Scenario::from_toml("")
            .unwrap_err()
            .to_string()
            .contains("name"));
        assert!(Scenario::from_toml("[scenario\nname = \"x\"")
            .unwrap_err()
            .to_string()
            .contains("unterminated"));
        assert!(
            Scenario::from_toml("[scenario]\nname = \"x\"\nseed = \"not a number\"")
                .unwrap_err()
                .to_string()
                .contains("integer")
        );
        let bad_topo = "[scenario]\nname = \"x\"\n[topology]\nplcs = 0\n";
        assert!(Scenario::from_toml(bad_topo)
            .unwrap_err()
            .to_string()
            .contains("topology"));
        let bad_access = "[scenario]\nname = \"x\"\n[apt]\ninitial_access = \"magic\"\n";
        assert!(Scenario::from_toml(bad_access)
            .unwrap_err()
            .to_string()
            .contains("initial_access"));
    }

    #[test]
    fn string_escape_errors_render_the_offending_character() {
        // Service error responses embed these strings verbatim, so they must
        // read as messages, not as debug dumps (`Some('q')`): pin them.
        let bad_escape = "[scenario]\nname = \"a\\qb\"\n";
        assert_eq!(
            Scenario::from_toml(bad_escape).unwrap_err().to_string(),
            "scenario toml: line 2: unsupported escape `\\q`"
        );
        let dangling = "[scenario]\nname = \"a\\\"\n";
        assert_eq!(
            Scenario::from_toml(dangling).unwrap_err().to_string(),
            "scenario toml: line 2: dangling `\\` at end of string"
        );
    }

    #[test]
    fn toml_rejects_typoed_keys_and_tables() {
        // A typoed key must not silently fall back to the paper default.
        let typo_key = "[scenario]\nname = \"x\"\n[topology]\nplc = 40\n";
        let err = Scenario::from_toml(typo_key).unwrap_err().to_string();
        assert!(err.contains("unknown key `plc`"), "{err}");

        let typo_table = "[scenario]\nname = \"x\"\n[attacker]\nlabor_rate = 1\n";
        let err = Scenario::from_toml(typo_table).unwrap_err().to_string();
        assert!(err.contains("unknown table `[attacker]`"), "{err}");

        let no_table = "name = \"x\"\n";
        let err = Scenario::from_toml(no_table).unwrap_err().to_string();
        assert!(err.contains("[table]"), "{err}");
    }

    #[test]
    fn float_formatting_survives_round_trip() {
        for v in [0.0, 1.0, 0.5, 0.9995, 2.5e-3, 1.0 / 3.0, 123.456] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
            assert!(matches!(parse_value(&s), Ok(TomlValue::Float(f)) if f == v));
        }
    }
}
