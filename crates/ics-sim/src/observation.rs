//! What the defender observes each hour.
//!
//! The defender never sees ground-truth compromise state. It sees the alert
//! stream from the IDS, the results of its own completed investigations, and
//! the operational status of the PLCs (which the paper assumes is directly
//! observable).

use crate::alert::Alert;
use crate::orchestrator::{InvestigationKind, MitigationKind};
use crate::plc_state::PlcStatus;
use ics_net::NodeId;
use serde::{Deserialize, Serialize};

/// Per-node observation for one time step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeObservation {
    /// The node this observation refers to.
    pub node: NodeId,
    /// Number of alerts attributed to the node this step, by severity
    /// (index 0 = severity 1).
    pub alert_counts: [u32; 3],
    /// An investigation that completed on the node this step, with whether it
    /// detected a compromise.
    pub investigation: Option<(InvestigationKind, bool)>,
    /// A mitigation that completed on the node this step.
    pub mitigation: Option<MitigationKind>,
    /// Whether the node is currently on its quarantine VLAN.
    pub quarantined: bool,
}

impl NodeObservation {
    /// A fully quiet observation for a node.
    pub fn quiet(node: NodeId, quarantined: bool) -> Self {
        Self {
            node,
            alert_counts: [0; 3],
            investigation: None,
            mitigation: None,
            quarantined,
        }
    }

    /// Total number of alerts attributed to the node this step.
    pub fn total_alerts(&self) -> u32 {
        self.alert_counts.iter().sum()
    }

    /// Highest alert severity seen this step (0 when there were no alerts).
    pub fn max_severity(&self) -> u8 {
        for sev in (0..3).rev() {
            if self.alert_counts[sev] > 0 {
                return (sev + 1) as u8;
            }
        }
        0
    }

    /// Whether a completed investigation detected a compromise this step.
    pub fn detection(&self) -> bool {
        matches!(self.investigation, Some((_, true)))
    }
}

/// The full observation returned by the environment each hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Current simulation hour.
    pub time: u64,
    /// Per-node observations, index-aligned with node identifiers.
    pub nodes: Vec<NodeObservation>,
    /// Directly observable PLC statuses, index-aligned with PLC identifiers.
    pub plc_status: Vec<PlcStatus>,
    /// The raw alert stream for the step (the per-node counts above are an
    /// aggregation of these).
    pub alerts: Vec<Alert>,
    /// Sorted, deduplicated indices of the nodes whose entry in `nodes` was
    /// written this step (alerts, completed investigations, completed
    /// mitigations). Every other entry is a quiet carry-over from the
    /// previous hour, which is what lets downstream feature encoders touch
    /// only active rows. Hand-built observations may leave this empty; it is
    /// only meaningful on the environment's step-to-step observation chain.
    pub active_nodes: Vec<usize>,
}

impl Observation {
    /// Number of PLCs currently offline according to the observation.
    pub fn plcs_offline(&self) -> usize {
        self.plc_status.iter().filter(|s| s.is_offline()).count()
    }

    /// Total number of alerts across all nodes this step.
    pub fn total_alerts(&self) -> usize {
        self.alerts.len()
    }

    /// The per-node observation for a node.
    ///
    /// # Panics
    ///
    /// Panics if the node index is out of range for this observation.
    pub fn node(&self, node: NodeId) -> &NodeObservation {
        &self.nodes[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_observation() {
        let o = NodeObservation::quiet(NodeId::from_index(3), false);
        assert_eq!(o.total_alerts(), 0);
        assert_eq!(o.max_severity(), 0);
        assert!(!o.detection());
        assert!(!o.quarantined);
    }

    #[test]
    fn severity_and_detection_accessors() {
        let mut o = NodeObservation::quiet(NodeId::from_index(0), true);
        o.alert_counts = [2, 0, 1];
        assert_eq!(o.total_alerts(), 3);
        assert_eq!(o.max_severity(), 3);
        o.investigation = Some((InvestigationKind::SimpleScan, true));
        assert!(o.detection());
        o.investigation = Some((InvestigationKind::SimpleScan, false));
        assert!(!o.detection());
    }

    #[test]
    fn observation_aggregates() {
        let obs = Observation {
            time: 7,
            nodes: vec![
                NodeObservation::quiet(NodeId::from_index(0), false),
                NodeObservation::quiet(NodeId::from_index(1), false),
            ],
            plc_status: vec![
                PlcStatus::Nominal,
                PlcStatus::Disrupted,
                PlcStatus::Destroyed,
            ],
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        };
        assert_eq!(obs.plcs_offline(), 2);
        assert_eq!(obs.total_alerts(), 0);
        assert_eq!(obs.node(NodeId::from_index(1)).node.index(), 1);
    }
}
