//! Evaluation metrics (Table 2 of the paper).
//!
//! Each episode is scored by four quantities: the discounted task return, the
//! number of PLCs offline at the end of the episode, the average per-step IT
//! disruption cost, and the average number of compromised nodes per hour.

use serde::{Deserialize, Serialize};

/// Accumulates the paper's evaluation metrics over one episode.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeMetrics {
    /// Discounted sum of task rewards.
    pub discounted_return: f64,
    /// Undiscounted sum of task rewards.
    pub undiscounted_return: f64,
    /// Number of PLCs offline at the end of the episode.
    pub final_plcs_offline: usize,
    /// Number of steps recorded.
    pub steps: u64,
    sum_it_cost: f64,
    sum_nodes_compromised: f64,
    max_plcs_offline: usize,
}

impl EpisodeMetrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one environment step.
    ///
    /// `discount` is γ^t for the step; `it_cost` is the total cost of
    /// defender actions completing this step; `nodes_compromised` and
    /// `plcs_offline` are read from the post-step state.
    pub fn record_step(
        &mut self,
        reward: f64,
        discount: f64,
        it_cost: f64,
        nodes_compromised: usize,
        plcs_offline: usize,
    ) {
        self.discounted_return += discount * reward;
        self.undiscounted_return += reward;
        self.sum_it_cost += it_cost;
        self.sum_nodes_compromised += nodes_compromised as f64;
        self.max_plcs_offline = self.max_plcs_offline.max(plcs_offline);
        self.final_plcs_offline = plcs_offline;
        self.steps += 1;
    }

    /// Average IT disruption cost per step.
    pub fn average_it_cost(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.sum_it_cost / self.steps as f64
        }
    }

    /// Average number of compromised nodes per hour.
    pub fn average_nodes_compromised(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.sum_nodes_compromised / self.steps as f64
        }
    }

    /// The largest number of PLCs simultaneously offline during the episode.
    pub fn max_plcs_offline(&self) -> usize {
        self.max_plcs_offline
    }
}

/// Mean and standard error of a sample, as reported in the paper's tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanStdErr {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_err: f64,
}

impl MeanStdErr {
    /// Computes mean and standard error from a sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        if samples.len() < 2 {
            return Self { mean, std_err: 0.0 };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        Self {
            mean,
            std_err: (var / n).sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStdErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std_err)
    }
}

/// Aggregate of [`EpisodeMetrics`] over many evaluation episodes: one row of
/// Table 2.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvaluationSummary {
    /// Number of episodes aggregated.
    pub episodes: usize,
    /// Discounted return.
    pub discounted_return: MeanStdErr,
    /// Final PLCs offline.
    pub final_plcs_offline: MeanStdErr,
    /// Average IT cost per step.
    pub average_it_cost: MeanStdErr,
    /// Average nodes compromised per hour.
    pub average_nodes_compromised: MeanStdErr,
}

impl EvaluationSummary {
    /// Aggregates per-episode metrics into a summary row.
    pub fn from_episodes(episodes: &[EpisodeMetrics]) -> Self {
        let collect =
            |f: &dyn Fn(&EpisodeMetrics) -> f64| episodes.iter().map(f).collect::<Vec<f64>>();
        Self {
            episodes: episodes.len(),
            discounted_return: MeanStdErr::from_samples(&collect(&|m| m.discounted_return)),
            final_plcs_offline: MeanStdErr::from_samples(&collect(&|m| {
                m.final_plcs_offline as f64
            })),
            average_it_cost: MeanStdErr::from_samples(&collect(&|m| m.average_it_cost())),
            average_nodes_compromised: MeanStdErr::from_samples(&collect(&|m| {
                m.average_nodes_compromised()
            })),
        }
    }
}

impl std::fmt::Display for EvaluationSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "return {} | PLCs offline {} | IT cost {} | nodes compromised {}",
            self.discounted_return,
            self.final_plcs_offline,
            self.average_it_cost,
            self.average_nodes_compromised
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let mut m = EpisodeMetrics::new();
        m.record_step(1.0, 1.0, 0.1, 2, 0);
        m.record_step(0.5, 0.5, 0.3, 4, 3);
        assert!((m.discounted_return - 1.25).abs() < 1e-12);
        assert!((m.undiscounted_return - 1.5).abs() < 1e-12);
        assert_eq!(m.final_plcs_offline, 3);
        assert_eq!(m.max_plcs_offline(), 3);
        assert!((m.average_it_cost() - 0.2).abs() < 1e-12);
        assert!((m.average_nodes_compromised() - 3.0).abs() < 1e-12);
        assert_eq!(m.steps, 2);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = EpisodeMetrics::new();
        assert_eq!(m.average_it_cost(), 0.0);
        assert_eq!(m.average_nodes_compromised(), 0.0);
    }

    #[test]
    fn mean_std_err() {
        let s = MeanStdErr::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // variance = 5/3, std err = sqrt(5/3/4) ≈ 0.6455
        assert!((s.std_err - 0.6454972243679028).abs() < 1e-9);
        assert_eq!(MeanStdErr::from_samples(&[]).mean, 0.0);
        assert_eq!(MeanStdErr::from_samples(&[7.0]).std_err, 0.0);
        assert!(s.to_string().contains('±'));
    }

    #[test]
    fn summary_aggregates_episodes() {
        let mut a = EpisodeMetrics::new();
        a.record_step(1.0, 1.0, 0.2, 1, 0);
        let mut b = EpisodeMetrics::new();
        b.record_step(3.0, 1.0, 0.4, 3, 2);
        let summary = EvaluationSummary::from_episodes(&[a, b]);
        assert_eq!(summary.episodes, 2);
        assert!((summary.discounted_return.mean - 2.0).abs() < 1e-12);
        assert!((summary.average_it_cost.mean - 0.3).abs() < 1e-12);
        assert!((summary.final_plcs_offline.mean - 1.0).abs() < 1e-12);
        assert!(!summary.to_string().is_empty());
    }
}
