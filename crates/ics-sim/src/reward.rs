//! The reward module: eqs. (1)–(4) of the paper plus the shaping potential of
//! eq. (6).

use crate::state::NetworkState;
use serde::{Deserialize, Serialize};

/// Parameters of the task reward (eqs. 1–4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weight of the IT-disruption term relative to the PLC term (λ in eq. 1).
    pub lambda: f64,
    /// Discount factor γ; also sets the terminal-reward magnitude 1/(1−γ).
    pub gamma: f64,
    /// Episode length in hours (t_max).
    pub max_time: u64,
    /// Per-PLC penalty for a disrupted process (eq. 2).
    pub disrupted_penalty: f64,
    /// Per-PLC penalty for destroyed equipment (eq. 2).
    pub destroyed_penalty: f64,
}

impl RewardConfig {
    /// The paper's reward parameters: λ = 0.1, γ = 0.9995, 5 000-hour
    /// episodes, penalties of 0.05 per disrupted and 0.1 per destroyed PLC.
    pub fn paper() -> Self {
        Self {
            lambda: 0.1,
            gamma: 0.9995,
            max_time: 5_000,
            disrupted_penalty: 0.05,
            destroyed_penalty: 0.1,
        }
    }

    /// A shortened-episode configuration for fast tests and CPU-budget
    /// training runs. All weights stay at paper values; only the horizon
    /// changes.
    pub fn with_max_time(mut self, max_time: u64) -> Self {
        self.max_time = max_time;
        self
    }

    /// PLC operation term (eq. 2): `1 − 0.05·n_disrupted − 0.1·n_destroyed`.
    pub fn plc_term(&self, state: &NetworkState) -> f64 {
        1.0 - self.disrupted_penalty * state.disrupted_plc_count() as f64
            - self.destroyed_penalty * state.destroyed_plc_count() as f64
    }

    /// IT disruption term (eq. 3): `1 − Σ cost(a)` over actions completing
    /// this step.
    pub fn it_term(&self, completed_action_cost: f64) -> f64 {
        1.0 - completed_action_cost
    }

    /// Terminal term (eq. 4): `1/(1−γ)` when the episode reaches `t_max`.
    pub fn terminal_term(&self, time: u64) -> f64 {
        if time >= self.max_time {
            1.0 / (1.0 - self.gamma)
        } else {
            0.0
        }
    }

    /// The full per-step task reward (eq. 1).
    pub fn step_reward(&self, state: &NetworkState, completed_action_cost: f64, time: u64) -> f64 {
        self.plc_term(state)
            + self.lambda * self.it_term(completed_action_cost)
            + self.terminal_term(time)
    }

    /// Upper bound on the discounted return of an episode (≈ 2 200 with paper
    /// parameters), achieved by defending the network without taking any
    /// action.
    pub fn max_discounted_return(&self) -> f64 {
        let per_step = 1.0 + self.lambda;
        let t = self.max_time as f64;
        let geometric = (1.0 - self.gamma.powf(t)) / (1.0 - self.gamma);
        per_step * geometric + self.gamma.powf(t) / (1.0 - self.gamma)
    }
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Parameters of the potential-based shaping reward (eq. 6).
///
/// The shaping term rewards the agent for *reducing* the number of
/// compromised workstations and servers between consecutive states, which is
/// critical for learning over the paper's very long episodes. Only the task
/// reward is used for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapingConfig {
    /// Weight on the change in compromised workstations (A in eq. 6).
    pub workstation_weight: f64,
    /// Weight on the change in compromised servers (B in eq. 6).
    pub server_weight: f64,
    /// Discount factor γ used in the potential difference.
    pub gamma: f64,
    /// Overall weight of the shaping term added to the task reward
    /// (the grid search of §4.2 selects 1/(1−γ) = 2 000 scaled down by the
    /// per-node weights below; a weight of 0 disables shaping).
    pub weight: f64,
}

impl ShapingConfig {
    /// Shaping parameters used for training in this reproduction: unit
    /// per-workstation weight, servers weighted 2x, γ from the paper.
    pub fn paper() -> Self {
        Self {
            workstation_weight: 1.0,
            server_weight: 2.0,
            gamma: 0.9995,
            weight: 1.0,
        }
    }

    /// Disables shaping (ablation).
    pub fn disabled() -> Self {
        Self {
            weight: 0.0,
            ..Self::paper()
        }
    }

    /// Potential of a state: minus the weighted count of compromised nodes.
    /// Using a potential function keeps the shaped optimal policy identical
    /// to the unshaped one (Ng et al., 1999).
    pub fn potential(&self, state: &NetworkState) -> f64 {
        -(self.workstation_weight * state.compromised_workstation_count() as f64
            + self.server_weight * state.compromised_server_count() as f64)
    }

    /// Shaping reward for a transition (eq. 6): `γ·Φ(s') − Φ(s)`, scaled by
    /// the overall weight.
    pub fn shaping_reward(&self, prev: &NetworkState, next: &NetworkState) -> f64 {
        self.weight * (self.gamma * self.potential(next) - self.potential(prev))
    }
}

impl Default for ShapingConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compromise::CompromiseCondition as C;
    use crate::plc_state::PlcStatus;
    use ics_net::{PlcId, Topology, TopologySpec};

    fn state() -> (Topology, NetworkState) {
        let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
        let s = NetworkState::new(&topo);
        (topo, s)
    }

    #[test]
    fn paper_parameters() {
        let cfg = RewardConfig::paper();
        assert_eq!(cfg.lambda, 0.1);
        assert_eq!(cfg.gamma, 0.9995);
        assert_eq!(cfg.max_time, 5_000);
    }

    #[test]
    fn plc_term_decreases_with_damage() {
        let (_, mut s) = state();
        let cfg = RewardConfig::paper();
        assert_eq!(cfg.plc_term(&s), 1.0);
        s.plc_mut(PlcId::from_index(0)).status = PlcStatus::Disrupted;
        assert!((cfg.plc_term(&s) - 0.95).abs() < 1e-12);
        s.plc_mut(PlcId::from_index(1)).status = PlcStatus::Destroyed;
        assert!((cfg.plc_term(&s) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn it_term_penalises_action_cost() {
        let cfg = RewardConfig::paper();
        assert_eq!(cfg.it_term(0.0), 1.0);
        assert!((cfg.it_term(0.15) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn terminal_reward_only_at_horizon() {
        let cfg = RewardConfig::paper();
        assert_eq!(cfg.terminal_term(4_999), 0.0);
        assert!((cfg.terminal_term(5_000) - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn step_reward_composes_terms() {
        let (_, s) = state();
        let cfg = RewardConfig::paper();
        let r = cfg.step_reward(&s, 0.05, 10);
        assert!((r - (1.0 + 0.1 * 0.95)).abs() < 1e-12);
    }

    #[test]
    fn max_return_matches_paper_estimate() {
        let cfg = RewardConfig::paper();
        let max = cfg.max_discounted_return();
        // The paper states the maximum discounted return is about 2 200.
        assert!(max > 2_100.0 && max < 2_300.0, "max return was {max}");
    }

    #[test]
    fn shaping_rewards_cleaning_and_penalises_compromise() {
        let (topo, clean) = state();
        let mut compromised = clean.clone();
        let ws = topo.workstations().next().unwrap().id;
        compromised.update_compromise(ws, |c| {
            c.try_insert(C::Scanned);
            c.try_insert(C::InitialCompromise);
        });

        let shaping = ShapingConfig::paper();
        // Getting compromised is penalised; getting cleaned is rewarded.
        assert!(shaping.shaping_reward(&clean, &compromised) < 0.0);
        assert!(shaping.shaping_reward(&compromised, &clean) > 0.0);
        // No change in compromise ≈ no shaping signal.
        assert!(shaping.shaping_reward(&clean, &clean).abs() < 1e-9);
        assert_eq!(
            ShapingConfig::disabled().shaping_reward(&clean, &compromised),
            0.0
        );
    }

    #[test]
    fn servers_weigh_more_than_workstations_in_potential() {
        let (topo, base) = state();
        let shaping = ShapingConfig::paper();
        let mut ws_comp = base.clone();
        let ws = topo.workstations().next().unwrap().id;
        ws_comp.update_compromise(ws, |c| {
            c.try_insert(C::Scanned);
            c.try_insert(C::InitialCompromise);
        });
        let mut srv_comp = base.clone();
        let srv = topo.servers().next().unwrap().id;
        srv_comp.update_compromise(srv, |c| {
            c.try_insert(C::Scanned);
            c.try_insert(C::InitialCompromise);
        });
        assert!(shaping.potential(&srv_comp) < shaping.potential(&ws_comp));
    }
}
