//! The IDS module: how alerts are generated from network activity.
//!
//! Three mechanisms produce alerts (paper §3.1 and appendix):
//!
//! 1. **Action alerts** — every APT action attempt may raise an alert with the
//!    action's base alert rate; if the action sends messages across the
//!    network, the rate is multiplied by the alert factor of every device the
//!    message passes through (switch 1x, router 2x, firewall 5x).
//! 2. **Passive alerts** — every compromised node passively raises an alert
//!    each hour with probability 0.1 (reduced when the APT has cleaned
//!    malware on the node).
//! 3. **False alerts** — each level raises spurious alerts each hour with
//!    probability 5e-2, 5e-3 and 2.5e-3 for severities 1, 2 and 3.

use crate::alert::{Alert, AlertCause, AlertSource, Severity};
use crate::apt::action::{AptAction, AptTarget};
use crate::compromise::CompromiseCondition;
use crate::state::NetworkState;
use ics_net::{Level, Topology, VlanId};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the intrusion detection system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdsConfig {
    /// Hourly probability that a compromised node passively raises an alert.
    pub passive_alert_prob: f64,
    /// Hourly probability of a false severity-1 alert per level.
    pub false_alert_prob_sev1: f64,
    /// Hourly probability of a false severity-2 alert per level.
    pub false_alert_prob_sev2: f64,
    /// Hourly probability of a false severity-3 alert per level.
    pub false_alert_prob_sev3: f64,
}

impl IdsConfig {
    /// The paper's baseline IDS parameters.
    pub fn paper_baseline() -> Self {
        Self {
            passive_alert_prob: 0.1,
            false_alert_prob_sev1: 5e-2,
            false_alert_prob_sev2: 5e-3,
            false_alert_prob_sev3: 2.5e-3,
        }
    }

    /// A degraded IDS tier: half the passive detection rate of the baseline
    /// and double the false-alarm rates — an under-maintained sensor fleet
    /// that both misses more and cries wolf more.
    pub fn degraded() -> Self {
        let base = Self::paper_baseline();
        Self {
            passive_alert_prob: base.passive_alert_prob * 0.5,
            false_alert_prob_sev1: base.false_alert_prob_sev1 * 2.0,
            false_alert_prob_sev2: base.false_alert_prob_sev2 * 2.0,
            false_alert_prob_sev3: base.false_alert_prob_sev3 * 2.0,
        }
    }

    /// An enhanced IDS tier: 1.5x the passive detection rate of the baseline
    /// and half the false-alarm rates — a well-tuned deployment.
    pub fn enhanced() -> Self {
        let base = Self::paper_baseline();
        Self {
            passive_alert_prob: (base.passive_alert_prob * 1.5).min(1.0),
            false_alert_prob_sev1: base.false_alert_prob_sev1 * 0.5,
            false_alert_prob_sev2: base.false_alert_prob_sev2 * 0.5,
            false_alert_prob_sev3: base.false_alert_prob_sev3 * 0.5,
        }
    }

    /// False-alert probability for a severity level (1..=3).
    pub fn false_alert_prob(&self, severity: Severity) -> f64 {
        match severity.level() {
            1 => self.false_alert_prob_sev1,
            2 => self.false_alert_prob_sev2,
            _ => self.false_alert_prob_sev3,
        }
    }
}

impl Default for IdsConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// The intrusion detection system.
#[derive(Debug, Clone)]
pub struct IdsModule {
    config: IdsConfig,
}

impl IdsModule {
    /// Creates an IDS with the given configuration.
    pub fn new(config: IdsConfig) -> Self {
        Self { config }
    }

    /// The IDS configuration.
    pub fn config(&self) -> &IdsConfig {
        &self.config
    }

    /// Severity of an alert attributed to a node, based on how deeply that
    /// node is compromised.
    pub fn severity_for_node(state: &NetworkState, node: ics_net::NodeId) -> Severity {
        Severity::new(state.compromise(node).class().severity_level())
    }

    /// Probability that an APT action attempt raises an alert, given its base
    /// alert rate, the devices its messages cross, and whether the source
    /// node has had its malware cleaned.
    pub fn action_alert_prob(
        &self,
        action: &AptAction,
        topology: &Topology,
        state: &NetworkState,
        cleanup_effectiveness: f64,
    ) -> f64 {
        let mut p = action.kind.alert_rate();
        if action.kind.generates_traffic() {
            if let Some(src) = action.source {
                let from = state.vlan_of(src);
                let to = match action.target {
                    AptTarget::Vlan(v) => v,
                    AptTarget::Node(n) => state.vlan_of(n),
                    AptTarget::Plc(_) => VlanId::ops(1),
                    AptTarget::None => from,
                };
                p *= topology.device_factor_between_vlans(from, to);
            }
        }
        if let Some(src) = action.source {
            if state
                .compromise(src)
                .contains(CompromiseCondition::MalwareCleaned)
            {
                p *= 1.0 - cleanup_effectiveness;
            }
        }
        p.clamp(0.0, 1.0)
    }

    /// Rolls for an alert caused by an APT action attempt. The alert is
    /// attributed to the node the action was launched from (or its target
    /// node for the initial intrusion).
    pub fn roll_action_alert(
        &self,
        action: &AptAction,
        topology: &Topology,
        state: &NetworkState,
        cleanup_effectiveness: f64,
        time: u64,
        rng: &mut StdRng,
    ) -> Option<Alert> {
        let p = self.action_alert_prob(action, topology, state, cleanup_effectiveness);
        if !rng.gen_bool(p) {
            return None;
        }
        let node = action.source.or(action.target_node())?;
        Some(Alert {
            time,
            source: AlertSource::Node(node),
            ip: topology.ip_of(node),
            severity: Self::severity_for_node(state, node),
            cause: AlertCause::AptAction,
        })
    }

    /// Rolls passive alerts on every compromised node for one hour.
    pub fn passive_alerts(
        &self,
        topology: &Topology,
        state: &NetworkState,
        cleanup_effectiveness: f64,
        time: u64,
        rng: &mut StdRng,
    ) -> Vec<Alert> {
        let mut alerts = Vec::new();
        // The sparse compromised-node index is sorted ascending, so the
        // per-node `gen_bool` draws happen in the same order as the historical
        // dense scan and the RNG stream (and every transcript) is unchanged.
        for &idx in state.compromised_indices() {
            let node = ics_net::NodeId::from_index(idx);
            let mut p = self.config.passive_alert_prob;
            if state
                .compromise(node)
                .contains(CompromiseCondition::MalwareCleaned)
            {
                p *= 1.0 - cleanup_effectiveness;
            }
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                alerts.push(Alert {
                    time,
                    source: AlertSource::Node(node),
                    ip: topology.ip_of(node),
                    severity: Self::severity_for_node(state, node),
                    cause: AlertCause::Passive,
                });
            }
        }
        alerts
    }

    /// Rolls false alerts for one hour. Each level can produce one false
    /// alert per severity per hour; false alerts are attributed to a random
    /// node on that level.
    pub fn false_alerts(&self, topology: &Topology, time: u64, rng: &mut StdRng) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for level in Level::all() {
            // The per-level cache lists nodes in insertion order — the same
            // order the historical filtered scan produced — so `gen_range`
            // picks the same node for the same draw.
            let nodes = topology.nodes_on_level(level);
            if nodes.is_empty() {
                continue;
            }
            for severity in [Severity::LOW, Severity::MEDIUM, Severity::HIGH] {
                if rng.gen_bool(self.config.false_alert_prob(severity)) {
                    let node = nodes[rng.gen_range(0..nodes.len())];
                    alerts.push(Alert {
                        time,
                        source: AlertSource::Node(node),
                        ip: topology.ip_of(node),
                        severity,
                        cause: AlertCause::FalseAlarm,
                    });
                }
            }
        }
        alerts
    }
}

impl Default for IdsModule {
    fn default() -> Self {
        Self::new(IdsConfig::paper_baseline())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apt::action::AptActionKind;
    use crate::compromise::CompromiseCondition as C;
    use ics_net::{NodeId, TopologySpec};
    use rand::SeedableRng;

    fn fixture() -> (Topology, NetworkState, IdsModule) {
        let topo = Topology::build(&TopologySpec::paper_full()).unwrap();
        let state = NetworkState::new(&topo);
        (topo, state, IdsModule::default())
    }

    fn compromise(state: &mut NetworkState, node: NodeId, cleaned: bool) {
        state.update_compromise(node, |c| {
            c.try_insert(C::Scanned);
            c.try_insert(C::InitialCompromise);
            if cleaned {
                c.try_insert(C::AdminAccess);
                c.try_insert(C::MalwareCleaned);
            }
        });
    }

    #[test]
    fn config_matches_paper_baseline() {
        let cfg = IdsConfig::paper_baseline();
        assert_eq!(cfg.passive_alert_prob, 0.1);
        assert_eq!(cfg.false_alert_prob(Severity::LOW), 5e-2);
        assert_eq!(cfg.false_alert_prob(Severity::MEDIUM), 5e-3);
        assert_eq!(cfg.false_alert_prob(Severity::HIGH), 2.5e-3);
    }

    #[test]
    fn ids_tiers_order_sensibly() {
        let degraded = IdsConfig::degraded();
        let baseline = IdsConfig::paper_baseline();
        let enhanced = IdsConfig::enhanced();
        assert!(degraded.passive_alert_prob < baseline.passive_alert_prob);
        assert!(baseline.passive_alert_prob < enhanced.passive_alert_prob);
        for sev in [Severity::LOW, Severity::MEDIUM, Severity::HIGH] {
            assert!(degraded.false_alert_prob(sev) > baseline.false_alert_prob(sev));
            assert!(baseline.false_alert_prob(sev) > enhanced.false_alert_prob(sev));
        }
        assert!(enhanced.passive_alert_prob <= 1.0);
    }

    #[test]
    fn single_node_actions_use_base_rate() {
        let (topo, mut state, ids) = fixture();
        let ws = topo.workstations().next().unwrap().id;
        compromise(&mut state, ws, false);
        let action = AptAction::new(AptActionKind::Cleanup, Some(ws), AptTarget::Node(ws));
        let p = ids.action_alert_prob(&action, &topo, &state, 0.5);
        assert!((p - AptActionKind::Cleanup.alert_rate()).abs() < 1e-12);
    }

    #[test]
    fn cross_level_traffic_multiplies_alert_rate() {
        let (topo, mut state, ids) = fixture();
        let ws = topo.workstations().next().unwrap().id;
        let hmi = topo.hmis().next().unwrap().id;
        compromise(&mut state, ws, false);
        let same_level_target = topo.workstations().nth(1).unwrap().id;
        let local = AptAction::new(
            AptActionKind::Compromise,
            Some(ws),
            AptTarget::Node(same_level_target),
        );
        let cross = AptAction::new(AptActionKind::Compromise, Some(ws), AptTarget::Node(hmi));
        let p_local = ids.action_alert_prob(&local, &topo, &state, 0.5);
        let p_cross = ids.action_alert_prob(&cross, &topo, &state, 0.5);
        assert!((p_local - 0.05).abs() < 1e-12);
        assert!((p_cross - 1.0).abs() < 1e-12, "0.05 * 20 saturates at 1.0");
        assert!(p_cross > p_local);
    }

    #[test]
    fn plc_attacks_from_level_2_are_noisier_than_from_level_1() {
        let (topo, mut state, ids) = fixture();
        let opc = topo.server(ics_net::ServerRole::Opc).unwrap().id;
        let hmi = topo.hmis().next().unwrap().id;
        compromise(&mut state, opc, false);
        compromise(&mut state, hmi, false);
        let plc = topo.plc_ids().next().unwrap();
        let from_opc = AptAction::new(AptActionKind::DiscoverPlc, Some(opc), AptTarget::Plc(plc));
        let from_hmi = AptAction::new(AptActionKind::DiscoverPlc, Some(hmi), AptTarget::Plc(plc));
        let p_opc = ids.action_alert_prob(&from_opc, &topo, &state, 0.5);
        let p_hmi = ids.action_alert_prob(&from_hmi, &topo, &state, 0.5);
        assert!(p_opc > p_hmi);
        assert!((p_hmi - 0.03).abs() < 1e-12);
        assert!((p_opc - 0.6).abs() < 1e-12);
    }

    #[test]
    fn cleanup_reduces_alert_probability() {
        let (topo, mut state, ids) = fixture();
        let ws = topo.workstations().next().unwrap().id;
        compromise(&mut state, ws, true);
        let action = AptAction::new(
            AptActionKind::EscalatePrivilege,
            Some(ws),
            AptTarget::Node(ws),
        );
        let p_half = ids.action_alert_prob(&action, &topo, &state, 0.5);
        let p_nine = ids.action_alert_prob(&action, &topo, &state, 0.9);
        assert!((p_half - 0.025).abs() < 1e-12);
        assert!(p_nine < p_half);
    }

    #[test]
    fn passive_alert_rate_is_approximately_nominal() {
        let (topo, mut state, ids) = fixture();
        let ws = topo.workstations().next().unwrap().id;
        compromise(&mut state, ws, false);
        let mut rng = StdRng::seed_from_u64(0);
        let trials = 20_000;
        let mut hits = 0;
        for t in 0..trials {
            hits += ids.passive_alerts(&topo, &state, 0.5, t, &mut rng).len();
        }
        let rate = hits as f64 / trials as f64;
        assert!(
            (rate - 0.1).abs() < 0.01,
            "passive rate {rate} should be near 0.1"
        );
    }

    #[test]
    fn false_alerts_prefer_low_severity() {
        let (topo, _state, ids) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        let mut by_sev = [0usize; 3];
        for t in 0..20_000 {
            for a in ids.false_alerts(&topo, t, &mut rng) {
                by_sev[(a.severity.level() - 1) as usize] += 1;
                assert_eq!(a.cause, AlertCause::FalseAlarm);
            }
        }
        assert!(by_sev[0] > by_sev[1]);
        assert!(by_sev[1] > by_sev[2]);
        assert!(by_sev[2] > 0);
    }

    #[test]
    fn alert_severity_scales_with_compromise_depth() {
        let (topo, mut state, _ids) = fixture();
        let ws = topo.workstations().next().unwrap().id;
        assert_eq!(IdsModule::severity_for_node(&state, ws), Severity::LOW);
        compromise(&mut state, ws, false);
        assert_eq!(IdsModule::severity_for_node(&state, ws), Severity::MEDIUM);
        state.update_compromise(ws, |c| c.try_insert(C::AdminAccess));
        assert_eq!(IdsModule::severity_for_node(&state, ws), Severity::HIGH);
    }
}
