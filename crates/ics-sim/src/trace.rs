//! Episode trace recording.
//!
//! The paper's artifact ships scripts that log and plot campaign traces; this
//! module provides the equivalent hooks: a [`TraceRecorder`] that captures a
//! per-hour summary of an episode (attack phase, compromise counts, alert
//! volume, defender activity, rewards) and can render it as CSV for external
//! plotting.

use crate::env::StepResult;
use crate::orchestrator::DefenderAction;
use serde::{Deserialize, Serialize};

/// One recorded simulation hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Simulation hour.
    pub time: u64,
    /// Attacker FSM phase name at the end of the hour.
    pub apt_phase: String,
    /// Number of compromised nodes.
    pub nodes_compromised: usize,
    /// Number of PLCs offline.
    pub plcs_offline: usize,
    /// Number of IDS alerts raised this hour.
    pub alerts: usize,
    /// Number of defender actions submitted this hour (excluding no-action).
    pub defender_actions: usize,
    /// Defender cost charged this hour.
    pub it_cost: f64,
    /// Task reward for the hour.
    pub reward: f64,
}

/// Records an episode as a sequence of [`TraceRow`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecorder {
    rows: Vec<TraceRow>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one step: the actions submitted and the step result.
    pub fn record(&mut self, actions: &[DefenderAction], step: &StepResult) {
        let defender_actions = actions
            .iter()
            .filter(|a| !matches!(a, DefenderAction::NoAction))
            .count();
        self.rows.push(TraceRow {
            time: step.observation.time,
            apt_phase: step.info.apt_phase.to_string(),
            nodes_compromised: step.info.nodes_compromised,
            plcs_offline: step.info.plcs_offline,
            alerts: step.observation.alerts.len(),
            defender_actions,
            it_cost: step.it_cost,
            reward: step.reward,
        });
    }

    /// The recorded rows in time order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Number of recorded hours.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Hours at which the attacker's phase changed, with the new phase name.
    pub fn phase_transitions(&self) -> Vec<(u64, String)> {
        let mut out = Vec::new();
        let mut last: Option<&str> = None;
        for row in &self.rows {
            if last != Some(row.apt_phase.as_str()) {
                out.push((row.time, row.apt_phase.clone()));
                last = Some(row.apt_phase.as_str());
            }
        }
        out
    }

    /// Total number of alerts over the episode.
    pub fn total_alerts(&self) -> usize {
        self.rows.iter().map(|r| r.alerts).sum()
    }

    /// Largest number of PLCs simultaneously offline.
    pub fn peak_plcs_offline(&self) -> usize {
        self.rows.iter().map(|r| r.plcs_offline).max().unwrap_or(0)
    }

    /// Renders the trace as CSV (with header), suitable for plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "time,apt_phase,nodes_compromised,plcs_offline,alerts,defender_actions,it_cost,reward\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.4}\n",
                r.time,
                r.apt_phase,
                r.nodes_compromised,
                r.plcs_offline,
                r.alerts,
                r.defender_actions,
                r.it_cost,
                r.reward
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::env::IcsEnvironment;

    #[test]
    fn records_an_episode_and_exports_csv() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(2).with_max_time(60));
        let _ = env.reset();
        let mut trace = TraceRecorder::new();
        assert!(trace.is_empty());
        loop {
            let actions = vec![DefenderAction::NoAction];
            let step = env.step(&actions);
            trace.record(&actions, &step);
            if step.done {
                break;
            }
        }
        assert_eq!(trace.len(), 60);
        assert!(!trace.is_empty());
        assert_eq!(trace.rows().first().unwrap().time, 1);
        assert_eq!(trace.rows().last().unwrap().time, 60);

        let csv = trace.to_csv();
        assert!(csv.starts_with("time,apt_phase"));
        // Header plus one line per hour.
        assert_eq!(csv.lines().count(), 61);
    }

    #[test]
    fn phase_transitions_are_deduplicated_and_ordered() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(5).with_max_time(150));
        let _ = env.reset();
        let mut trace = TraceRecorder::new();
        loop {
            let actions = vec![DefenderAction::NoAction];
            let step = env.step(&actions);
            trace.record(&actions, &step);
            if step.done {
                break;
            }
        }
        let transitions = trace.phase_transitions();
        assert!(!transitions.is_empty());
        // Transitions are strictly increasing in time and never repeat the
        // previous phase.
        for pair in transitions.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert_ne!(pair[0].1, pair[1].1);
        }
        assert!(trace.peak_plcs_offline() <= env.topology().plc_count());
    }

    #[test]
    fn counts_defender_actions_excluding_noops() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(1).with_max_time(10));
        let _ = env.reset();
        let node = env.topology().workstations().next().unwrap().id;
        let actions = vec![
            DefenderAction::NoAction,
            DefenderAction::Investigate {
                kind: crate::orchestrator::InvestigationKind::SimpleScan,
                node,
            },
        ];
        let step = env.step(&actions);
        let mut trace = TraceRecorder::new();
        trace.record(&actions, &step);
        assert_eq!(trace.rows()[0].defender_actions, 1);
        assert_eq!(trace.total_alerts(), trace.rows()[0].alerts);
    }
}
