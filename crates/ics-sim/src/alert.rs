//! Intrusion-detection alerts.
//!
//! Alerts are what the defender actually observes: the IP address of the node
//! or networking device that generated the alert and a severity from 1
//! (lowest) to 3 (highest), with severity based on the state of the node that
//! generated it.

use ics_net::{DeviceId, IpAddr, NodeId, PlcId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Alert severity, 1 (lowest) to 3 (highest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Severity(u8);

impl Severity {
    /// Lowest severity.
    pub const LOW: Severity = Severity(1);
    /// Medium severity.
    pub const MEDIUM: Severity = Severity(2);
    /// Highest severity.
    pub const HIGH: Severity = Severity(3);

    /// Creates a severity, clamping to the valid 1..=3 range.
    pub fn new(level: u8) -> Self {
        Severity(level.clamp(1, 3))
    }

    /// Numeric severity level (1..=3).
    pub fn level(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sev{}", self.0)
    }
}

/// Where an alert was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertSource {
    /// A computing node generated the alert.
    Node(NodeId),
    /// A networking device generated the alert (message-traffic alerts).
    Device(DeviceId),
    /// A PLC generated the alert (process state change).
    Plc(PlcId),
    /// No attributable source (false alarm).
    Unattributed,
}

/// What caused an alert. Hidden from the defender in principle (the defender
/// only sees source and severity), but useful for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertCause {
    /// Triggered by an APT action.
    AptAction,
    /// Passive detection on a compromised node.
    Passive,
    /// Result of a defender investigation.
    Investigation,
    /// A false alarm.
    FalseAlarm,
}

/// A single IDS alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alert {
    /// Simulation hour at which the alert was raised.
    pub time: u64,
    /// Node, device or PLC the alert is attributed to.
    pub source: AlertSource,
    /// IP address reported with the alert (what a real SIEM would show).
    pub ip: IpAddr,
    /// Severity from 1 to 3.
    pub severity: Severity,
    /// Ground-truth cause (used by diagnostics and the DBN training data
    /// generator; a deployed defender would not see this field).
    pub cause: AlertCause,
}

impl Alert {
    /// Convenience predicate: alert attributed to the given node.
    pub fn is_for_node(&self, node: NodeId) -> bool {
        matches!(self.source, AlertSource::Node(n) if n == node)
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t={}] {} from {}", self.time, self.severity, self.ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_clamps_to_valid_range() {
        assert_eq!(Severity::new(0).level(), 1);
        assert_eq!(Severity::new(2).level(), 2);
        assert_eq!(Severity::new(9).level(), 3);
        assert!(Severity::LOW < Severity::HIGH);
    }

    #[test]
    fn alert_node_predicate() {
        let alert = Alert {
            time: 5,
            source: AlertSource::Node(NodeId::from_index(3)),
            ip: IpAddr::new(10, 2, 1, 13),
            severity: Severity::MEDIUM,
            cause: AlertCause::AptAction,
        };
        assert!(alert.is_for_node(NodeId::from_index(3)));
        assert!(!alert.is_for_node(NodeId::from_index(4)));
        assert!(alert.to_string().contains("sev2"));
    }
}
