//! Simulation configuration presets.

use crate::apt::AptProfile;
use crate::ids::IdsConfig;
use crate::reward::{RewardConfig, ShapingConfig};
use ics_net::TopologySpec;
use serde::{Deserialize, Serialize};

/// Everything needed to instantiate an [`crate::IcsEnvironment`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Shape of the network to simulate.
    pub topology: TopologySpec,
    /// Attacker profile sampled at each episode reset.
    pub apt: AptProfile,
    /// Intrusion detection system parameters.
    pub ids: IdsConfig,
    /// Task reward parameters.
    pub reward: RewardConfig,
    /// Shaping reward parameters (training only).
    pub shaping: ShapingConfig,
    /// Seed for the environment's random number generator.
    pub seed: u64,
    /// Number of PLCs discovered per completed PLC-discovery action.
    pub plc_discovery_batch: usize,
}

impl SimConfig {
    /// The full-scale evaluation configuration of the paper: Fig. 2 topology,
    /// APT1 attacker, baseline IDS, 5 000-hour episodes.
    pub fn full() -> Self {
        Self {
            topology: TopologySpec::paper_full(),
            apt: AptProfile::apt1(),
            ids: IdsConfig::paper_baseline(),
            reward: RewardConfig::paper(),
            shaping: ShapingConfig::paper(),
            seed: 0,
            plc_discovery_batch: 5,
        }
    }

    /// The reduced configuration used for hyper-parameter tuning (§4.2):
    /// smaller topology, same attacker and reward structure.
    pub fn small() -> Self {
        Self {
            topology: TopologySpec::paper_small(),
            ..Self::full()
        }
    }

    /// A tiny, short-horizon configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            topology: TopologySpec::tiny(),
            reward: RewardConfig::paper().with_max_time(200),
            ..Self::full()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different attacker profile.
    pub fn with_apt(mut self, apt: AptProfile) -> Self {
        self.apt = apt;
        self
    }

    /// Returns a copy with a different episode horizon (hours).
    pub fn with_max_time(mut self, max_time: u64) -> Self {
        self.reward.max_time = max_time;
        self
    }

    /// Returns a copy with a different shaping configuration.
    pub fn with_shaping(mut self, shaping: ShapingConfig) -> Self {
        self.shaping = shaping;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let full = SimConfig::full();
        assert_eq!(full.topology.plcs, 50);
        assert_eq!(full.reward.max_time, 5_000);
        let small = SimConfig::small();
        assert_eq!(small.topology.plcs, 30);
        let tiny = SimConfig::tiny();
        assert!(tiny.reward.max_time < 1_000);
        assert_eq!(SimConfig::default(), SimConfig::full());
    }

    #[test]
    fn builder_methods() {
        let cfg = SimConfig::small()
            .with_seed(42)
            .with_max_time(100)
            .with_apt(AptProfile::apt2())
            .with_shaping(crate::reward::ShapingConfig::disabled());
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.reward.max_time, 100);
        assert_eq!(cfg.apt.lateral_threshold, 1);
        assert_eq!(cfg.shaping.weight, 0.0);
    }
}
