//! Operational state of programmable logic controllers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Operational status of a PLC-controlled process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlcStatus {
    /// The process is operating nominally.
    #[default]
    Nominal,
    /// The process has been disrupted (recoverable with a PLC reset).
    Disrupted,
    /// The equipment has been destroyed (requires replacing the PLC).
    Destroyed,
}

impl PlcStatus {
    /// Whether the PLC is offline (disrupted or destroyed) — the quantity the
    /// paper's "PLCs offline" metric counts.
    pub fn is_offline(&self) -> bool {
        !matches!(self, PlcStatus::Nominal)
    }
}

impl fmt::Display for PlcStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlcStatus::Nominal => "nominal",
            PlcStatus::Disrupted => "disrupted",
            PlcStatus::Destroyed => "destroyed",
        };
        f.write_str(s)
    }
}

/// Full dynamic state of a single PLC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlcState {
    /// Operational status of the controlled process.
    pub status: PlcStatus,
    /// Whether the APT has flashed malicious firmware onto the controller
    /// (a prerequisite for destroying equipment).
    pub firmware_compromised: bool,
    /// Whether the APT has discovered this PLC during PLC discovery.
    pub discovered_by_apt: bool,
}

impl PlcState {
    /// A nominal, undiscovered PLC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears process disruption and firmware compromise (defender "Reset
    /// PLC" action). Has no effect on destroyed equipment.
    pub fn reset(&mut self) {
        if self.status == PlcStatus::Disrupted {
            self.status = PlcStatus::Nominal;
        }
        self.firmware_compromised = false;
    }

    /// Replaces destroyed equipment with a fresh controller (defender
    /// "Replace PLC" action). Restores nominal operation and clears firmware
    /// compromise regardless of prior state.
    pub fn replace(&mut self) {
        self.status = PlcStatus::Nominal;
        self.firmware_compromised = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nominal_and_undiscovered() {
        let p = PlcState::new();
        assert_eq!(p.status, PlcStatus::Nominal);
        assert!(!p.firmware_compromised);
        assert!(!p.discovered_by_apt);
        assert!(!p.status.is_offline());
    }

    #[test]
    fn reset_recovers_disruption_but_not_destruction() {
        let mut p = PlcState {
            status: PlcStatus::Disrupted,
            firmware_compromised: true,
            discovered_by_apt: true,
        };
        p.reset();
        assert_eq!(p.status, PlcStatus::Nominal);
        assert!(!p.firmware_compromised);

        let mut destroyed = PlcState {
            status: PlcStatus::Destroyed,
            ..PlcState::default()
        };
        destroyed.reset();
        assert_eq!(destroyed.status, PlcStatus::Destroyed);
        destroyed.replace();
        assert_eq!(destroyed.status, PlcStatus::Nominal);
    }

    #[test]
    fn offline_statuses() {
        assert!(PlcStatus::Disrupted.is_offline());
        assert!(PlcStatus::Destroyed.is_offline());
        assert!(!PlcStatus::Nominal.is_offline());
        assert_eq!(PlcStatus::Destroyed.to_string(), "destroyed");
    }
}
