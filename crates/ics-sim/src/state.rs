//! Ground-truth dynamic state of the network during an episode.

use crate::compromise::{CompromiseCondition, CompromiseSet};
use crate::plc_state::{PlcState, PlcStatus};
use ics_net::{NodeId, NodeKind, PlcId, Topology, VlanId};
use serde::{Deserialize, Serialize};

/// The full (hidden) state of the simulated network: every node's compromise
/// conditions and current VLAN, and every PLC's operational state.
///
/// The defender never observes this directly — it observes
/// [`crate::Observation`]s — but baselines, the DBN training data generator
/// and the evaluation metrics read it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkState {
    node_compromise: Vec<CompromiseSet>,
    node_vlan: Vec<VlanId>,
    node_is_server: Vec<bool>,
    node_home_vlan: Vec<VlanId>,
    plcs: Vec<PlcState>,
    /// Sorted dense indices of nodes the APT currently controls. Maintained
    /// by [`NetworkState::update_compromise`] so the per-step hot paths
    /// (IDS passive alerts, reward shaping, metrics) touch only active nodes
    /// instead of scanning the whole world.
    compromised_index: Vec<usize>,
    /// Compromised nodes that are workstations or HMIs (not servers).
    compromised_workstations: usize,
    /// Compromised servers.
    compromised_servers: usize,
    /// Sorted dense indices of nodes currently on a quarantine VLAN.
    quarantined_index: Vec<usize>,
}

impl NetworkState {
    /// Creates the initial (fully clean) state for a topology.
    pub fn new(topology: &Topology) -> Self {
        let node_compromise = vec![CompromiseSet::clean(); topology.node_count()];
        let node_vlan = topology.nodes().map(|n| n.home_vlan).collect();
        let node_home_vlan = topology.nodes().map(|n| n.home_vlan).collect();
        let node_is_server = topology
            .nodes()
            .map(|n| matches!(n.kind, NodeKind::Server(_)))
            .collect();
        let plcs = vec![PlcState::new(); topology.plc_count()];
        Self {
            node_compromise,
            node_vlan,
            node_is_server,
            node_home_vlan,
            plcs,
            compromised_index: Vec::new(),
            compromised_workstations: 0,
            compromised_servers: 0,
            quarantined_index: Vec::new(),
        }
    }

    /// Number of computing nodes.
    pub fn node_count(&self) -> usize {
        self.node_compromise.len()
    }

    /// Number of PLCs.
    pub fn plc_count(&self) -> usize {
        self.plcs.len()
    }

    /// Compromise conditions currently on a node.
    pub fn compromise(&self, node: NodeId) -> &CompromiseSet {
        &self.node_compromise[node.index()]
    }

    /// Applies a mutation to a node's compromise conditions while keeping the
    /// sparse compromised-node index and the per-kind counters in sync.
    ///
    /// All writes to compromise state go through here: the closure may insert
    /// or remove any conditions (including cascading removals), and the index
    /// is updated only when the node's overall compromised status flips.
    pub fn update_compromise<R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut CompromiseSet) -> R,
    ) -> R {
        let idx = node.index();
        let was = self.node_compromise[idx].is_compromised();
        let result = f(&mut self.node_compromise[idx]);
        let now = self.node_compromise[idx].is_compromised();
        if was != now {
            match self.compromised_index.binary_search(&idx) {
                Err(pos) if now => self.compromised_index.insert(pos, idx),
                Ok(pos) if !now => {
                    self.compromised_index.remove(pos);
                }
                _ => unreachable!("compromised index out of sync with compromise sets"),
            }
            let counter = if self.node_is_server[idx] {
                &mut self.compromised_servers
            } else {
                &mut self.compromised_workstations
            };
            if now {
                *counter += 1;
            } else {
                *counter -= 1;
            }
        }
        result
    }

    /// VLAN the node is currently connected to (reflects quarantine moves).
    pub fn vlan_of(&self, node: NodeId) -> VlanId {
        self.node_vlan[node.index()]
    }

    /// Whether the node is currently on its level's quarantine VLAN.
    pub fn is_quarantined(&self, node: NodeId) -> bool {
        self.node_vlan[node.index()].is_quarantine()
    }

    /// Whether the node is a server (cost and severity bookkeeping).
    pub fn is_server(&self, node: NodeId) -> bool {
        self.node_is_server[node.index()]
    }

    /// Moves the node to its level's quarantine VLAN, or back to its home
    /// VLAN if already quarantined. Returns the VLAN the node now sits on.
    pub fn toggle_quarantine(&mut self, node: NodeId) -> VlanId {
        let idx = node.index();
        self.node_vlan[idx] = if self.node_vlan[idx].is_quarantine() {
            self.node_home_vlan[idx]
        } else {
            self.node_home_vlan[idx].counterpart()
        };
        let quarantined = self.node_vlan[idx].is_quarantine();
        match self.quarantined_index.binary_search(&idx) {
            Err(pos) if quarantined => self.quarantined_index.insert(pos, idx),
            Ok(pos) if !quarantined => {
                self.quarantined_index.remove(pos);
            }
            _ => unreachable!("quarantine index out of sync with VLAN assignments"),
        }
        self.node_vlan[idx]
    }

    /// State of a PLC.
    pub fn plc(&self, plc: PlcId) -> &PlcState {
        &self.plcs[plc.index()]
    }

    /// Mutable access to a PLC's state.
    pub fn plc_mut(&mut self, plc: PlcId) -> &mut PlcState {
        &mut self.plcs[plc.index()]
    }

    /// Iterator over all PLC states in identifier order.
    pub fn plc_states(&self) -> impl Iterator<Item = &PlcState> {
        self.plcs.iter()
    }

    /// Identifiers of all nodes the APT currently controls (initial
    /// compromise or beyond), in ascending node order.
    pub fn compromised_nodes(&self) -> Vec<NodeId> {
        self.compromised_index
            .iter()
            .map(|&i| NodeId::from_index(i))
            .collect()
    }

    /// Sorted dense indices of all compromised nodes. The borrow-free sibling
    /// of [`NetworkState::compromised_nodes`] for hot loops that must not
    /// allocate.
    pub fn compromised_indices(&self) -> &[usize] {
        &self.compromised_index
    }

    /// Sorted dense indices of all nodes currently on a quarantine VLAN.
    pub fn quarantined_indices(&self) -> &[usize] {
        &self.quarantined_index
    }

    /// Number of compromised nodes.
    pub fn compromised_count(&self) -> usize {
        self.compromised_index.len()
    }

    /// Number of compromised nodes that are workstations or HMIs.
    pub fn compromised_workstation_count(&self) -> usize {
        self.compromised_workstations
    }

    /// Number of compromised servers.
    pub fn compromised_server_count(&self) -> usize {
        self.compromised_servers
    }

    /// Whether the APT currently controls at least one node.
    pub fn any_compromised(&self) -> bool {
        !self.compromised_index.is_empty()
    }

    /// Number of PLCs currently disrupted.
    pub fn disrupted_plc_count(&self) -> usize {
        self.plcs
            .iter()
            .filter(|p| p.status == PlcStatus::Disrupted)
            .count()
    }

    /// Number of PLCs currently destroyed.
    pub fn destroyed_plc_count(&self) -> usize {
        self.plcs
            .iter()
            .filter(|p| p.status == PlcStatus::Destroyed)
            .count()
    }

    /// Number of PLCs offline (disrupted or destroyed).
    pub fn offline_plc_count(&self) -> usize {
        self.plcs.iter().filter(|p| p.status.is_offline()).count()
    }

    /// Number of PLCs whose firmware the APT has flashed.
    pub fn firmware_compromised_count(&self) -> usize {
        self.plcs.iter().filter(|p| p.firmware_compromised).count()
    }

    /// Removes the `MalwareCleaned` condition from a node if present. Used by
    /// attacker actions that generate fresh artifacts on a node.
    pub fn dirty_node(&mut self, node: NodeId) {
        self.update_compromise(node, |c| c.remove(CompromiseCondition::MalwareCleaned));
    }

    /// Recomputes the compromise counters and indices with a dense scan and
    /// checks them against the incrementally maintained sparse state. Used by
    /// the sparse-vs-dense equivalence tests; not on any hot path.
    pub fn sparse_indices_match_dense_scan(&self) -> bool {
        let dense_compromised: Vec<usize> = self
            .node_compromise
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_compromised())
            .map(|(i, _)| i)
            .collect();
        let dense_servers = dense_compromised
            .iter()
            .filter(|&&i| self.node_is_server[i])
            .count();
        let dense_quarantined: Vec<usize> = self
            .node_vlan
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_quarantine())
            .map(|(i, _)| i)
            .collect();
        dense_compromised == self.compromised_index
            && dense_servers == self.compromised_servers
            && dense_compromised.len() - dense_servers == self.compromised_workstations
            && dense_quarantined == self.quarantined_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compromise::CompromiseCondition as C;
    use ics_net::TopologySpec;

    fn state() -> (Topology, NetworkState) {
        let topo = Topology::build(&TopologySpec::tiny()).unwrap();
        let state = NetworkState::new(&topo);
        (topo, state)
    }

    #[test]
    fn initial_state_is_clean() {
        let (topo, state) = state();
        assert_eq!(state.node_count(), topo.node_count());
        assert_eq!(state.plc_count(), topo.plc_count());
        assert_eq!(state.compromised_count(), 0);
        assert!(!state.any_compromised());
        assert_eq!(state.offline_plc_count(), 0);
    }

    #[test]
    fn compromise_counters_distinguish_servers() {
        let (topo, mut state) = state();
        let ws = topo.workstations().next().unwrap().id;
        let srv = topo.servers().next().unwrap().id;
        for n in [ws, srv] {
            state.update_compromise(n, |c| {
                c.try_insert(C::Scanned);
                c.try_insert(C::InitialCompromise);
            });
        }
        assert_eq!(state.compromised_count(), 2);
        assert_eq!(state.compromised_workstation_count(), 1);
        assert_eq!(state.compromised_server_count(), 1);
        assert!(state.is_server(srv));
        assert!(!state.is_server(ws));
        assert_eq!(state.compromised_nodes().len(), 2);
        assert!(state.sparse_indices_match_dense_scan());
        state.update_compromise(srv, |c| c.clear_all());
        assert_eq!(state.compromised_count(), 1);
        assert_eq!(state.compromised_server_count(), 0);
        assert!(state.sparse_indices_match_dense_scan());
    }

    #[test]
    fn quarantine_toggle_round_trips() {
        let (topo, mut state) = state();
        let ws = topo.workstations().next().unwrap().id;
        let home = state.vlan_of(ws);
        assert!(!state.is_quarantined(ws));
        let q = state.toggle_quarantine(ws);
        assert!(q.is_quarantine());
        assert!(state.is_quarantined(ws));
        assert_eq!(state.quarantined_indices(), &[ws.index()]);
        let back = state.toggle_quarantine(ws);
        assert_eq!(back, home);
        assert!(!state.is_quarantined(ws));
        assert!(state.quarantined_indices().is_empty());
        assert!(state.sparse_indices_match_dense_scan());
    }

    #[test]
    fn plc_counters() {
        let (_, mut state) = state();
        state.plc_mut(PlcId::from_index(0)).status = PlcStatus::Disrupted;
        state.plc_mut(PlcId::from_index(1)).status = PlcStatus::Destroyed;
        state.plc_mut(PlcId::from_index(2)).firmware_compromised = true;
        assert_eq!(state.disrupted_plc_count(), 1);
        assert_eq!(state.destroyed_plc_count(), 1);
        assert_eq!(state.offline_plc_count(), 2);
        assert_eq!(state.firmware_compromised_count(), 1);
    }

    #[test]
    fn dirty_node_clears_cleaned_flag() {
        let (topo, mut state) = state();
        let ws = topo.workstations().next().unwrap().id;
        state.update_compromise(ws, |c| {
            c.try_insert(C::Scanned);
            c.try_insert(C::InitialCompromise);
            c.try_insert(C::AdminAccess);
            c.try_insert(C::MalwareCleaned);
        });
        assert!(state.compromise(ws).contains(C::MalwareCleaned));
        state.dirty_node(ws);
        assert!(!state.compromise(ws).contains(C::MalwareCleaned));
        assert!(state.compromise(ws).has_admin());
    }
}
