//! INASIM — the ICS network attack simulator from the ACSO paper.
//!
//! This crate implements the simulation environment of §3.1 and the appendix
//! of *Autonomous Attack Mitigation for Industrial Control Systems*: an
//! event-driven, hour-resolution model of an advanced persistent threat (APT)
//! working its way through a Purdue-model ICS network while a defender
//! (the Autonomous Cyber Security Orchestrator, ACSO) investigates alerts and
//! mitigates compromises.
//!
//! The crate is organised into the same modules as the paper's Fig. 7:
//!
//! * [`state`] / [`env`](mod@env) — the network simulation module (node and PLC state,
//!   event queue, time model, the environment API);
//! * [`apt`] — the APT agent module (Table 5 action set, the finite-state
//!   machine attacker of Fig. 3, APT1/APT2 parameter presets);
//! * [`ids`] — the IDS module (per-action alerts scaled by device factors,
//!   passive alerts, false alerts);
//! * [`orchestrator`] — the defender action set (Tables 3–4) with durations,
//!   costs and countermeasures;
//! * [`reward`] — the reward module (eqs. 1–4) and the shaping potential
//!   (eq. 6);
//! * [`observation`] — what the defender gets to see each hour;
//! * [`metrics`] — the evaluation metrics reported in Table 2.
//!
//! # Example
//!
//! ```
//! use ics_sim::{IcsEnvironment, SimConfig};
//! use ics_sim::orchestrator::DefenderAction;
//!
//! // A small, fast configuration (the §4.2 grid-search network).
//! let mut env = IcsEnvironment::new(SimConfig::small().with_seed(7));
//! let mut obs = env.reset();
//! let mut total_reward = 0.0;
//! for _ in 0..48 {
//!     let step = env.step(&[DefenderAction::NoAction]);
//!     total_reward += step.reward;
//!     obs = step.observation;
//! }
//! assert_eq!(obs.time, 48);
//! assert!(total_reward > 0.0);
//! ```

#![warn(missing_docs)]

pub mod alert;
pub mod apt;
pub mod compromise;
pub mod config;
pub mod env;
pub mod ids;
pub mod metrics;
pub mod observation;
pub mod orchestrator;
pub mod plc_state;
pub mod reward;
pub mod scenario;
pub mod state;
pub mod trace;

pub use alert::{Alert, AlertSource, Severity};
pub use compromise::{CompromiseClass, CompromiseCondition, CompromiseSet};
pub use config::SimConfig;
pub use env::{IcsEnvironment, StepResult};
pub use metrics::EpisodeMetrics;
pub use observation::{NodeObservation, Observation};
pub use orchestrator::DefenderAction;
pub use plc_state::{PlcState, PlcStatus};
pub use scenario::{Scenario, ScenarioError};
pub use state::NetworkState;
