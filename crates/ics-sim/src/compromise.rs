//! Node compromise conditions (Table 1 of the paper).
//!
//! A node may carry several compromise conditions at once. Conditions have a
//! required precondition (e.g. a node must be scanned before it can be
//! initially compromised) and each enables different attacker capabilities or
//! defeats different defender mitigations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single compromise condition a node may experience (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompromiseCondition {
    /// The APT has scanned the node, allowing it to gain command and control.
    Scanned,
    /// The APT can take actions on and from the node.
    InitialCompromise,
    /// Control survives a defender reboot.
    RebootPersistence,
    /// The APT has administrator access, enabling additional actions.
    AdminAccess,
    /// Control survives a defender password reset.
    CredentialPersistence,
    /// Malware artifacts were removed, reducing the probability of alerts and
    /// of investigation detections.
    MalwareCleaned,
}

impl CompromiseCondition {
    /// All conditions, in escalation order.
    pub const ALL: [CompromiseCondition; 6] = [
        CompromiseCondition::Scanned,
        CompromiseCondition::InitialCompromise,
        CompromiseCondition::RebootPersistence,
        CompromiseCondition::AdminAccess,
        CompromiseCondition::CredentialPersistence,
        CompromiseCondition::MalwareCleaned,
    ];

    /// The condition that must already be present before this one can be set
    /// (Table 1's "required condition" column). `None` means no prerequisite.
    pub fn required(&self) -> Option<CompromiseCondition> {
        match self {
            CompromiseCondition::Scanned => None,
            CompromiseCondition::InitialCompromise => Some(CompromiseCondition::Scanned),
            CompromiseCondition::RebootPersistence => Some(CompromiseCondition::InitialCompromise),
            CompromiseCondition::AdminAccess => Some(CompromiseCondition::InitialCompromise),
            CompromiseCondition::CredentialPersistence => Some(CompromiseCondition::AdminAccess),
            CompromiseCondition::MalwareCleaned => Some(CompromiseCondition::AdminAccess),
        }
    }

    fn bit(&self) -> u8 {
        match self {
            CompromiseCondition::Scanned => 1 << 0,
            CompromiseCondition::InitialCompromise => 1 << 1,
            CompromiseCondition::RebootPersistence => 1 << 2,
            CompromiseCondition::AdminAccess => 1 << 3,
            CompromiseCondition::CredentialPersistence => 1 << 4,
            CompromiseCondition::MalwareCleaned => 1 << 5,
        }
    }
}

impl fmt::Display for CompromiseCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompromiseCondition::Scanned => "scanned",
            CompromiseCondition::InitialCompromise => "initial compromise",
            CompromiseCondition::RebootPersistence => "reboot persistence",
            CompromiseCondition::AdminAccess => "admin access",
            CompromiseCondition::CredentialPersistence => "credential persistence",
            CompromiseCondition::MalwareCleaned => "malware cleaned",
        };
        f.write_str(s)
    }
}

/// The set of compromise conditions currently present on a node.
///
/// The set enforces Table 1's prerequisite structure: a condition can only be
/// inserted when its required condition is already present, and removing a
/// condition also removes everything that depended on it.
///
/// ```
/// use ics_sim::{CompromiseCondition as C, CompromiseSet};
///
/// let mut set = CompromiseSet::clean();
/// assert!(!set.try_insert(C::InitialCompromise)); // requires Scanned
/// assert!(set.try_insert(C::Scanned));
/// assert!(set.try_insert(C::InitialCompromise));
/// assert!(set.is_compromised());
/// set.clear_all();
/// assert!(set.is_clean());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompromiseSet {
    bits: u8,
}

impl CompromiseSet {
    /// An empty (clean) set.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Whether no conditions are present.
    pub fn is_clean(&self) -> bool {
        self.bits == 0
    }

    /// Whether the condition is present.
    pub fn contains(&self, cond: CompromiseCondition) -> bool {
        self.bits & cond.bit() != 0
    }

    /// Whether the APT has command and control (initial compromise or beyond).
    pub fn is_compromised(&self) -> bool {
        self.contains(CompromiseCondition::InitialCompromise)
    }

    /// Whether the APT has administrator access.
    pub fn has_admin(&self) -> bool {
        self.contains(CompromiseCondition::AdminAccess)
    }

    /// Attempts to insert a condition, returning whether it is now present.
    ///
    /// Insertion fails (returns `false`) when Table 1's required condition is
    /// not yet present. Inserting an already-present condition returns `true`.
    pub fn try_insert(&mut self, cond: CompromiseCondition) -> bool {
        if let Some(req) = cond.required() {
            if !self.contains(req) {
                return false;
            }
        }
        self.bits |= cond.bit();
        true
    }

    /// Removes a condition and, transitively, every condition that required it.
    pub fn remove(&mut self, cond: CompromiseCondition) {
        if !self.contains(cond) {
            return;
        }
        self.bits &= !cond.bit();
        // Cascade: drop any condition whose prerequisite is now missing.
        let mut changed = true;
        while changed {
            changed = false;
            for c in CompromiseCondition::ALL {
                if self.contains(c) {
                    if let Some(req) = c.required() {
                        if !self.contains(req) {
                            self.bits &= !c.bit();
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    /// Removes every condition (full remediation, e.g. a re-image).
    pub fn clear_all(&mut self) {
        self.bits = 0;
    }

    /// Iterates over present conditions in escalation order.
    pub fn iter(&self) -> impl Iterator<Item = CompromiseCondition> + '_ {
        CompromiseCondition::ALL
            .into_iter()
            .filter(move |c| self.contains(*c))
    }

    /// Number of present conditions.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty. Alias of [`CompromiseSet::is_clean`].
    pub fn is_empty(&self) -> bool {
        self.is_clean()
    }

    /// Collapses the condition set into the coarse class used by the dynamic
    /// Bayes network filter and the defender's belief state.
    pub fn class(&self) -> CompromiseClass {
        if self.has_admin() {
            if self.contains(CompromiseCondition::CredentialPersistence) {
                CompromiseClass::AdminPersistent
            } else {
                CompromiseClass::Admin
            }
        } else if self.is_compromised() {
            if self.contains(CompromiseCondition::RebootPersistence) {
                CompromiseClass::CompromisedPersistent
            } else {
                CompromiseClass::Compromised
            }
        } else if self.contains(CompromiseCondition::Scanned) {
            CompromiseClass::Scanned
        } else {
            CompromiseClass::Clean
        }
    }
}

impl fmt::Display for CompromiseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean");
        }
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<CompromiseCondition> for CompromiseSet {
    /// Builds a set by repeatedly calling [`CompromiseSet::try_insert`];
    /// conditions whose prerequisites are missing at insertion time are
    /// silently dropped, so order matters.
    fn from_iter<T: IntoIterator<Item = CompromiseCondition>>(iter: T) -> Self {
        let mut set = CompromiseSet::clean();
        for c in iter {
            set.try_insert(c);
        }
        set
    }
}

/// Coarse compromise classes used as the hidden state of the DBN filter.
///
/// The full condition set (Table 1) has 2^6 combinations, most of which are
/// unreachable; the filter instead tracks this six-value ladder, which
/// captures everything the defender's action selection depends on: how deep
/// the attacker is and which mitigation the persistence defeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompromiseClass {
    /// No attacker presence.
    Clean,
    /// Scanned but not controlled.
    Scanned,
    /// Initial compromise without reboot persistence.
    Compromised,
    /// Initial compromise with reboot persistence (a reboot will not help).
    CompromisedPersistent,
    /// Administrator access without credential persistence.
    Admin,
    /// Administrator access with credential persistence (only a re-image
    /// fully remediates).
    AdminPersistent,
}

impl CompromiseClass {
    /// All classes, in escalation order.
    pub const ALL: [CompromiseClass; 6] = [
        CompromiseClass::Clean,
        CompromiseClass::Scanned,
        CompromiseClass::Compromised,
        CompromiseClass::CompromisedPersistent,
        CompromiseClass::Admin,
        CompromiseClass::AdminPersistent,
    ];

    /// Number of classes.
    pub const COUNT: usize = 6;

    /// Dense index of the class (0..COUNT), usable for probability tables.
    pub fn index(&self) -> usize {
        match self {
            CompromiseClass::Clean => 0,
            CompromiseClass::Scanned => 1,
            CompromiseClass::Compromised => 2,
            CompromiseClass::CompromisedPersistent => 3,
            CompromiseClass::Admin => 4,
            CompromiseClass::AdminPersistent => 5,
        }
    }

    /// Class corresponding to a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= CompromiseClass::COUNT`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Whether the class implies attacker command and control.
    pub fn is_compromised(&self) -> bool {
        matches!(
            self,
            CompromiseClass::Compromised
                | CompromiseClass::CompromisedPersistent
                | CompromiseClass::Admin
                | CompromiseClass::AdminPersistent
        )
    }

    /// IDS alert severity associated with activity in this class:
    /// 1 for scanning, 2 for user-level compromise, 3 for admin-level.
    pub fn severity_level(&self) -> u8 {
        match self {
            CompromiseClass::Clean => 1,
            CompromiseClass::Scanned => 1,
            CompromiseClass::Compromised | CompromiseClass::CompromisedPersistent => 2,
            CompromiseClass::Admin | CompromiseClass::AdminPersistent => 3,
        }
    }
}

impl fmt::Display for CompromiseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompromiseClass::Clean => "clean",
            CompromiseClass::Scanned => "scanned",
            CompromiseClass::Compromised => "compromised",
            CompromiseClass::CompromisedPersistent => "compromised (persistent)",
            CompromiseClass::Admin => "admin",
            CompromiseClass::AdminPersistent => "admin (persistent)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CompromiseCondition as C;

    #[test]
    fn prerequisites_match_table_1() {
        assert_eq!(C::Scanned.required(), None);
        assert_eq!(C::InitialCompromise.required(), Some(C::Scanned));
        assert_eq!(C::RebootPersistence.required(), Some(C::InitialCompromise));
        assert_eq!(C::AdminAccess.required(), Some(C::InitialCompromise));
        assert_eq!(C::CredentialPersistence.required(), Some(C::AdminAccess));
        assert_eq!(C::MalwareCleaned.required(), Some(C::AdminAccess));
    }

    #[test]
    fn insert_requires_prerequisite() {
        let mut s = CompromiseSet::clean();
        assert!(!s.try_insert(C::InitialCompromise));
        assert!(!s.try_insert(C::AdminAccess));
        assert!(s.try_insert(C::Scanned));
        assert!(s.try_insert(C::InitialCompromise));
        assert!(s.try_insert(C::AdminAccess));
        assert!(s.try_insert(C::CredentialPersistence));
        assert!(s.try_insert(C::MalwareCleaned));
        assert!(s.try_insert(C::RebootPersistence));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn remove_cascades_to_dependents() {
        let mut s: CompromiseSet = [
            C::Scanned,
            C::InitialCompromise,
            C::AdminAccess,
            C::CredentialPersistence,
            C::MalwareCleaned,
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 5);
        s.remove(C::InitialCompromise);
        // Everything that required initial compromise (directly or not) drops.
        assert_eq!(s.len(), 1);
        assert!(s.contains(C::Scanned));
        assert!(!s.is_compromised());
    }

    #[test]
    fn clear_all_resets_to_clean() {
        let mut s: CompromiseSet = [C::Scanned, C::InitialCompromise].into_iter().collect();
        s.clear_all();
        assert!(s.is_clean());
        assert!(s.is_empty());
        assert_eq!(s.class(), CompromiseClass::Clean);
    }

    #[test]
    fn class_mapping_follows_escalation_ladder() {
        let mut s = CompromiseSet::clean();
        assert_eq!(s.class(), CompromiseClass::Clean);
        s.try_insert(C::Scanned);
        assert_eq!(s.class(), CompromiseClass::Scanned);
        s.try_insert(C::InitialCompromise);
        assert_eq!(s.class(), CompromiseClass::Compromised);
        s.try_insert(C::RebootPersistence);
        assert_eq!(s.class(), CompromiseClass::CompromisedPersistent);
        s.try_insert(C::AdminAccess);
        assert_eq!(s.class(), CompromiseClass::Admin);
        s.try_insert(C::CredentialPersistence);
        assert_eq!(s.class(), CompromiseClass::AdminPersistent);
    }

    #[test]
    fn class_index_round_trip() {
        for (i, class) in CompromiseClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(CompromiseClass::from_index(i), class);
        }
    }

    #[test]
    fn class_severity_levels() {
        assert_eq!(CompromiseClass::Scanned.severity_level(), 1);
        assert_eq!(CompromiseClass::Compromised.severity_level(), 2);
        assert_eq!(CompromiseClass::AdminPersistent.severity_level(), 3);
        assert!(!CompromiseClass::Scanned.is_compromised());
        assert!(CompromiseClass::Admin.is_compromised());
    }

    #[test]
    fn display_lists_conditions() {
        let s: CompromiseSet = [C::Scanned, C::InitialCompromise].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("scanned"));
        assert!(text.contains("initial compromise"));
        assert_eq!(CompromiseSet::clean().to_string(), "clean");
    }
}
