//! The INASIM environment: the step/reset API the defender interacts with.
//!
//! The environment advances in one-hour steps. Each step the defender submits
//! zero or more actions, the attacker policy starts new actions subject to its
//! labor budget, in-flight actions whose durations have elapsed take effect,
//! the IDS emits alerts, and the reward module scores the resulting state.

use crate::alert::{Alert, AlertCause, AlertSource};
use crate::apt::{
    AptAction, AptActionKind, AptContext, AptKnowledge, AptParams, AptPolicy, AptTarget,
    FsmAptPolicy, InitialAccess,
};
use crate::compromise::CompromiseCondition as C;
use crate::config::SimConfig;
use crate::ids::IdsModule;
use crate::observation::{NodeObservation, Observation};
use crate::orchestrator::{DefenderAction, InvestigationKind, MitigationKind, PlcRecoveryKind};
use crate::plc_state::PlcStatus;
use crate::state::NetworkState;
use ics_net::{NodeId, ServerRole, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A defender action in flight.
#[derive(Debug, Clone, Copy)]
struct PendingDefender {
    action: DefenderAction,
    complete_at: u64,
    cost: f64,
}

/// An attacker action in flight.
#[derive(Debug, Clone, Copy)]
struct PendingApt {
    action: AptAction,
    complete_at: u64,
    success: bool,
}

/// Extra diagnostic information returned with every step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepInfo {
    /// Name of the attacker FSM phase after the step.
    pub apt_phase: &'static str,
    /// Number of compromised nodes after the step.
    pub nodes_compromised: usize,
    /// Number of PLCs offline after the step.
    pub plcs_offline: usize,
    /// Number of attacker actions currently in flight.
    pub apt_actions_in_flight: usize,
}

/// Result of a single environment step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// What the defender observes this hour.
    pub observation: Observation,
    /// Task reward (eq. 1) for the step.
    pub reward: f64,
    /// Potential-based shaping reward (eq. 6) for the step. Added to the task
    /// reward during training only.
    pub shaping_reward: f64,
    /// Total cost of defender actions that completed this step.
    pub it_cost: f64,
    /// Whether the episode has reached its time limit.
    pub done: bool,
    /// Diagnostics.
    pub info: StepInfo,
}

/// The ICS network attack simulation environment.
///
/// See the crate-level documentation for an overview and an example.
pub struct IcsEnvironment {
    config: SimConfig,
    topology: Topology,
    ids: IdsModule,
    state: NetworkState,
    knowledge: AptKnowledge,
    apt_params: AptParams,
    apt_policy: Box<dyn AptPolicy>,
    pending_defender: Vec<PendingDefender>,
    pending_apt: Vec<PendingApt>,
    time: u64,
    rng: StdRng,
    /// Persistent per-node observation buffer. Quiet entries carry over from
    /// hour to hour; only the entries dirtied by alerts or completed defender
    /// actions are reset, so per-step observation assembly scales with
    /// activity instead of world size.
    obs_buffer: Vec<NodeObservation>,
    /// Indices into `obs_buffer` written this hour (reset to quiet at the
    /// start of the next hour). May contain duplicates.
    dirty_obs: Vec<usize>,
    /// When set, the observation buffer is rebuilt densely every hour — the
    /// bit-identical reference the sparse-vs-dense equivalence suite compares
    /// against.
    dense_observation_mode: bool,
}

impl std::fmt::Debug for IcsEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IcsEnvironment")
            .field("time", &self.time)
            .field("nodes", &self.state.node_count())
            .field("plcs", &self.state.plc_count())
            .field("compromised", &self.state.compromised_count())
            .finish()
    }
}

impl IcsEnvironment {
    /// Creates an environment with the baseline finite-state-machine attacker.
    ///
    /// # Panics
    ///
    /// Panics if the configured topology spec fails validation; use
    /// [`IcsEnvironment::try_new`] for untrusted configurations (e.g.
    /// scenarios loaded from files).
    pub fn new(config: SimConfig) -> Self {
        Self::try_new(config).expect("invalid topology spec in SimConfig")
    }

    /// Fallible constructor: validates the topology spec instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`ics_net::TopologyError`] produced by
    /// [`Topology::build`] when the configured spec is degenerate.
    pub fn try_new(config: SimConfig) -> Result<Self, ics_net::TopologyError> {
        Self::try_with_apt_policy(config, Box::new(FsmAptPolicy::new()))
    }

    /// Creates an environment with a custom attacker policy.
    ///
    /// # Panics
    ///
    /// Panics if the configured topology spec fails validation; use
    /// [`IcsEnvironment::try_with_apt_policy`] for untrusted configurations.
    pub fn with_apt_policy(config: SimConfig, apt_policy: Box<dyn AptPolicy>) -> Self {
        Self::try_with_apt_policy(config, apt_policy).expect("invalid topology spec in SimConfig")
    }

    /// Fallible variant of [`IcsEnvironment::with_apt_policy`].
    ///
    /// # Errors
    ///
    /// Returns the [`ics_net::TopologyError`] produced by
    /// [`Topology::build`] when the configured spec is degenerate.
    pub fn try_with_apt_policy(
        config: SimConfig,
        apt_policy: Box<dyn AptPolicy>,
    ) -> Result<Self, ics_net::TopologyError> {
        let topology = Topology::build(&config.topology)?;
        let state = NetworkState::new(&topology);
        let ids = IdsModule::new(config.ids);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let apt_params = config.apt.sample(&mut rng);
        let mut env = Self {
            config,
            topology,
            ids,
            state,
            knowledge: AptKnowledge::new(),
            apt_params,
            apt_policy,
            pending_defender: Vec::new(),
            pending_apt: Vec::new(),
            time: 0,
            rng,
            obs_buffer: Vec::new(),
            dirty_obs: Vec::new(),
            dense_observation_mode: false,
        };
        env.reset_internal();
        Ok(env)
    }

    /// The static topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The ground-truth network state (hidden from the defender; exposed for
    /// baselines with oracle access, metrics and DBN training data).
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// The attacker's accumulated knowledge (diagnostics).
    pub fn apt_knowledge(&self) -> &AptKnowledge {
        &self.knowledge
    }

    /// The attack configuration sampled for the current episode.
    pub fn apt_params(&self) -> &AptParams {
        &self.apt_params
    }

    /// The environment configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulation hour.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Discount factor of the episode's reward.
    pub fn gamma(&self) -> f64 {
        self.config.reward.gamma
    }

    /// Episode horizon in hours.
    pub fn max_time(&self) -> u64 {
        self.config.reward.max_time
    }

    /// Resets the environment to the start of a fresh episode and returns the
    /// initial (quiet) observation.
    pub fn reset(&mut self) -> Observation {
        self.reset_internal();
        self.quiet_observation()
    }

    fn reset_internal(&mut self) {
        self.state = NetworkState::new(&self.topology);
        self.knowledge = AptKnowledge::new();
        self.pending_defender.clear();
        self.pending_apt.clear();
        self.time = 0;
        self.apt_params = self.config.apt.sample(&mut self.rng);
        self.apt_policy.reset(&self.apt_params);
        self.establish_beachhead();
        self.rebuild_obs_buffer();
    }

    /// Rebuilds the persistent observation buffer with a dense pass: every
    /// node quiet, quarantine flags read from the current state. Runs once
    /// per reset (and every hour in the dense reference mode).
    fn rebuild_obs_buffer(&mut self) {
        self.dirty_obs.clear();
        self.obs_buffer.clear();
        self.obs_buffer.extend(
            self.topology
                .node_ids()
                .map(|id| NodeObservation::quiet(id, self.state.is_quarantined(id))),
        );
    }

    /// Switches per-step observation assembly between the sparse dirty-set
    /// path (default) and a dense rebuild-everything-every-hour reference.
    /// The two produce bit-identical observations; the dense path exists so
    /// the equivalence suite has an independent baseline to compare against.
    pub fn set_dense_observation_reference(&mut self, dense: bool) {
        self.dense_observation_mode = dense;
    }

    /// Candidate nodes for the attacker's initial foothold, per the sampled
    /// [`InitialAccess`]: level-2 workstations for the paper's phishing-style
    /// entry, level-1 HMIs for the insider archetype.
    fn beachhead_candidates(&self) -> Vec<NodeId> {
        match self.apt_params.initial_access {
            InitialAccess::EngineeringWorkstation => {
                self.topology.workstations().map(|n| n.id).collect()
            }
            InitialAccess::OperationsHmi => self.topology.hmis().map(|n| n.id).collect(),
        }
    }

    /// Gives the attacker its initial foothold: one random entry node (see
    /// [`IcsEnvironment::beachhead_candidates`]) is scanned and compromised,
    /// and the attacker knows the operations VLAN it landed on.
    fn establish_beachhead(&mut self) {
        let candidates = self.beachhead_candidates();
        if let Some(beachhead) = candidates.choose(&mut self.rng).copied() {
            self.state.update_compromise(beachhead, |comp| {
                comp.try_insert(C::Scanned);
                comp.try_insert(C::InitialCompromise);
            });
            let vlan = self.state.vlan_of(beachhead);
            self.knowledge.record_location(beachhead, vlan);
            self.knowledge.discovered_vlans.insert(vlan);
        }
    }

    fn quiet_observation(&self) -> Observation {
        Observation {
            time: self.time,
            nodes: self
                .topology
                .node_ids()
                .map(|id| NodeObservation::quiet(id, self.state.is_quarantined(id)))
                .collect(),
            plc_status: self.state.plc_states().map(|p| p.status).collect(),
            alerts: Vec::new(),
            active_nodes: Vec::new(),
        }
    }

    /// Advances the simulation by one hour.
    ///
    /// The defender may submit any number of actions; each is charged its
    /// cost when it completes. Returns the observation, rewards and
    /// diagnostics for the step.
    pub fn step(&mut self, actions: &[DefenderAction]) -> StepResult {
        self.time += 1;
        let prev_potential = self.config.shaping.potential(&self.state);

        let mut alerts: Vec<Alert> = Vec::new();
        if self.dense_observation_mode {
            self.rebuild_obs_buffer();
        } else {
            // Reset only the entries written last hour; everything else is
            // already quiet and its quarantine flag is kept current by
            // `apply_mitigation`.
            let mut dirty = std::mem::take(&mut self.dirty_obs);
            dirty.sort_unstable();
            dirty.dedup();
            for idx in dirty.drain(..) {
                let id = NodeId::from_index(idx);
                self.obs_buffer[idx] = NodeObservation::quiet(id, self.state.is_quarantined(id));
            }
            self.dirty_obs = dirty;
        }

        // 1. Enqueue defender actions.
        for action in actions {
            if matches!(action, DefenderAction::NoAction) {
                continue;
            }
            let is_server = action
                .target_node()
                .map(|n| self.state.is_server(n))
                .unwrap_or(false);
            self.pending_defender.push(PendingDefender {
                action: *action,
                complete_at: self.time + action.duration().max(1) - 1,
                cost: action.cost(is_server),
            });
        }

        // 2. Attacker decides and starts new actions.
        self.start_apt_actions(&mut alerts);

        // 3. Apply attacker actions whose durations have elapsed.
        self.complete_apt_actions();

        // 4. Apply defender actions whose durations have elapsed.
        let it_cost = self.complete_defender_actions(&mut alerts);

        // 5. Passive and false alerts.
        alerts.extend(self.ids.passive_alerts(
            &self.topology,
            &self.state,
            self.apt_params.cleanup_effectiveness,
            self.time,
            &mut self.rng,
        ));
        alerts.extend(
            self.ids
                .false_alerts(&self.topology, self.time, &mut self.rng),
        );

        // 6. Aggregate alerts into per-node counts — driven by the raw alert
        // stream, so only nodes that actually alerted this hour are touched.
        for alert in &alerts {
            if let AlertSource::Node(node) = alert.source {
                let sev = (alert.severity.level() - 1) as usize;
                self.obs_buffer[node.index()].alert_counts[sev] += 1;
                self.dirty_obs.push(node.index());
            }
        }
        if self.dense_observation_mode {
            for (idx, obs) in self.obs_buffer.iter_mut().enumerate() {
                obs.quarantined = self.state.is_quarantined(NodeId::from_index(idx));
            }
        }

        // 7. Score the step.
        let reward = self
            .config
            .reward
            .step_reward(&self.state, it_cost, self.time);
        let next_potential = self.config.shaping.potential(&self.state);
        let shaping_reward = self.config.shaping.weight
            * (self.config.shaping.gamma * next_potential - prev_potential);
        let done = self.time >= self.config.reward.max_time;

        // The step's dirty set doubles as the observation's active-node list:
        // it is exactly the set of entries written this hour, in either mode.
        let mut active_nodes = self.dirty_obs.clone();
        active_nodes.sort_unstable();
        active_nodes.dedup();
        let observation = Observation {
            time: self.time,
            nodes: self.obs_buffer.clone(),
            plc_status: self.state.plc_states().map(|p| p.status).collect(),
            alerts,
            active_nodes,
        };
        let info = StepInfo {
            apt_phase: self.apt_policy.phase_name(),
            nodes_compromised: self.state.compromised_count(),
            plcs_offline: self.state.offline_plc_count(),
            apt_actions_in_flight: self.pending_apt.len(),
        };
        StepResult {
            observation,
            reward,
            shaping_reward,
            it_cost,
            done,
            info,
        }
    }

    /// Samples a duration from the Binomial(n, p) distribution of Table 5.
    fn sample_duration(&mut self, kind: AptActionKind) -> u64 {
        let (n, p) = kind.time_dist();
        let mut hours = 0u64;
        for _ in 0..n {
            if self.rng.gen_bool(p) {
                hours += 1;
            }
        }
        hours.max(1)
    }

    fn start_apt_actions(&mut self, alerts: &mut Vec<Alert>) {
        let in_progress: Vec<AptAction> = self.pending_apt.iter().map(|p| p.action).collect();
        let free_labor = self
            .apt_params
            .labor_rate
            .saturating_sub(self.pending_apt.len());
        let decided = {
            let ctx = AptContext {
                topology: &self.topology,
                state: &self.state,
                knowledge: &self.knowledge,
                params: &self.apt_params,
                in_progress: &in_progress,
                free_labor,
                time: self.time,
            };
            self.apt_policy.decide(&ctx, &mut self.rng)
        };
        for action in decided.into_iter().take(free_labor) {
            let success = self.rng.gen_bool(action.kind.success_prob());
            let duration = self.sample_duration(action.kind);
            // Starting analysis is itself the exit criterion of the process
            // discovery phase (Fig. 3), so record it at launch time.
            if action.kind == AptActionKind::AnalyzeHistorian {
                self.knowledge.historian_analysis_started = true;
            }
            if let Some(alert) = self.ids.roll_action_alert(
                &action,
                &self.topology,
                &self.state,
                self.apt_params.cleanup_effectiveness,
                self.time,
                &mut self.rng,
            ) {
                alerts.push(alert);
            }
            self.pending_apt.push(PendingApt {
                action,
                complete_at: self.time + duration,
                success,
            });
        }
    }

    fn complete_apt_actions(&mut self) {
        let due: Vec<PendingApt> = {
            let (due, rest): (Vec<_>, Vec<_>) = self
                .pending_apt
                .drain(..)
                .partition(|p| p.complete_at <= self.time);
            self.pending_apt = rest;
            due
        };
        for pending in due {
            if pending.success {
                self.apply_apt_effect(pending.action);
            }
        }
    }

    /// Whether the attacker can still act from a source node (it is still
    /// compromised and has not been isolated on a quarantine VLAN).
    fn source_usable(&self, source: Option<NodeId>) -> bool {
        match source {
            None => true,
            Some(node) => {
                self.state.compromise(node).is_compromised() && !self.state.is_quarantined(node)
            }
        }
    }

    fn apply_apt_effect(&mut self, action: AptAction) {
        if !self.source_usable(action.source) {
            return;
        }
        match action.kind {
            AptActionKind::InitialIntrusion => {
                let candidates: Vec<NodeId> = self
                    .beachhead_candidates()
                    .into_iter()
                    .filter(|n| !self.state.is_quarantined(*n))
                    .collect();
                if let Some(node) = candidates.choose(&mut self.rng).copied() {
                    self.state.update_compromise(node, |comp| {
                        comp.try_insert(C::Scanned);
                        comp.try_insert(C::InitialCompromise);
                    });
                    let vlan = self.state.vlan_of(node);
                    self.knowledge.record_location(node, vlan);
                    self.knowledge.discovered_vlans.insert(vlan);
                }
            }
            AptActionKind::ScanVlan => {
                if let AptTarget::Vlan(vlan) = action.target {
                    let on_vlan: Vec<NodeId> = self
                        .topology
                        .node_ids()
                        .filter(|id| self.state.vlan_of(*id) == vlan)
                        .collect();
                    for node in on_vlan {
                        self.state
                            .update_compromise(node, |c| c.try_insert(C::Scanned));
                        self.knowledge.record_location(node, vlan);
                    }
                }
            }
            AptActionKind::Compromise => {
                if let Some(target) = action.target_node() {
                    // Stale knowledge: if the node moved since the scan, the
                    // attempt fails and the attacker forgets its location.
                    let believed = self.knowledge.believed_location(target);
                    let actual = self.state.vlan_of(target);
                    if believed != Some(actual) {
                        self.knowledge.forget_location(target);
                        return;
                    }
                    self.state
                        .update_compromise(target, |c| c.try_insert(C::InitialCompromise));
                    if self.state.compromise(target).is_compromised() {
                        self.state.dirty_node(target);
                    }
                }
            }
            AptActionKind::RebootPersist => {
                if let Some(target) = action.target_node() {
                    self.state
                        .update_compromise(target, |c| c.try_insert(C::RebootPersistence));
                }
            }
            AptActionKind::EscalatePrivilege => {
                if let Some(target) = action.target_node() {
                    self.state
                        .update_compromise(target, |c| c.try_insert(C::AdminAccess));
                }
            }
            AptActionKind::CredentialPersist => {
                if let Some(target) = action.target_node() {
                    self.state
                        .update_compromise(target, |c| c.try_insert(C::CredentialPersistence));
                }
            }
            AptActionKind::Cleanup => {
                if let Some(target) = action.target_node() {
                    self.state
                        .update_compromise(target, |c| c.try_insert(C::MalwareCleaned));
                }
            }
            AptActionKind::DiscoverVlan => {
                for vlan in self.topology.ops_vlans() {
                    self.knowledge.discovered_vlans.insert(vlan);
                }
            }
            AptActionKind::DiscoverServer => {
                if let AptTarget::Vlan(vlan) = action.target {
                    let servers: Vec<(ServerRole, NodeId)> = self
                        .topology
                        .servers()
                        .filter(|n| self.state.vlan_of(n.id) == vlan)
                        .filter_map(|n| n.kind.server_role().map(|r| (r, n.id)))
                        .collect();
                    for (role, node) in servers {
                        self.knowledge.record_server(role, node);
                        self.knowledge.record_location(node, vlan);
                        self.state
                            .update_compromise(node, |c| c.try_insert(C::Scanned));
                    }
                }
            }
            AptActionKind::AnalyzeHistorian => {
                self.knowledge.historian_analysis_complete = true;
            }
            AptActionKind::DiscoverPlc => {
                let undiscovered: Vec<_> = self
                    .topology
                    .plc_ids()
                    .filter(|p| !self.state.plc(*p).discovered_by_apt)
                    .collect();
                for plc in undiscovered
                    .into_iter()
                    .take(self.config.plc_discovery_batch)
                {
                    self.state.plc_mut(plc).discovered_by_apt = true;
                    self.knowledge.record_plc(plc);
                }
            }
            AptActionKind::FlashFirmware => {
                if let Some(plc) = action.target_plc() {
                    if self.state.plc(plc).discovered_by_apt {
                        self.state.plc_mut(plc).firmware_compromised = true;
                    }
                }
            }
            AptActionKind::DisruptPlc => {
                if let Some(plc) = action.target_plc() {
                    let p = self.state.plc_mut(plc);
                    if p.discovered_by_apt && p.status == PlcStatus::Nominal {
                        p.status = PlcStatus::Disrupted;
                    }
                }
            }
            AptActionKind::DestroyPlc => {
                if let Some(plc) = action.target_plc() {
                    let p = self.state.plc_mut(plc);
                    if p.discovered_by_apt && p.firmware_compromised {
                        p.status = PlcStatus::Destroyed;
                    }
                }
            }
        }
    }

    fn complete_defender_actions(&mut self, alerts: &mut Vec<Alert>) -> f64 {
        let due: Vec<PendingDefender> = {
            let (due, rest): (Vec<_>, Vec<_>) = self
                .pending_defender
                .drain(..)
                .partition(|p| p.complete_at <= self.time);
            self.pending_defender = rest;
            due
        };
        let mut cost = 0.0;
        for pending in due {
            cost += pending.cost;
            match pending.action {
                DefenderAction::NoAction => {}
                DefenderAction::Investigate { kind, node } => {
                    let detected = self.roll_investigation(kind, node);
                    self.obs_buffer[node.index()].investigation = Some((kind, detected));
                    self.dirty_obs.push(node.index());
                    if detected {
                        alerts.push(Alert {
                            time: self.time,
                            source: AlertSource::Node(node),
                            ip: self.topology.ip_of(node),
                            severity: IdsModule::severity_for_node(&self.state, node),
                            cause: AlertCause::Investigation,
                        });
                    }
                }
                DefenderAction::Mitigate { kind, node } => {
                    self.apply_mitigation(kind, node);
                    let idx = node.index();
                    self.obs_buffer[idx].mitigation = Some(kind);
                    // A quarantine toggle is the only way a node changes VLAN;
                    // refreshing the flag here keeps every untouched buffer
                    // entry's flag permanently current.
                    self.obs_buffer[idx].quarantined = self.state.is_quarantined(node);
                    self.dirty_obs.push(idx);
                }
                DefenderAction::RecoverPlc { kind, plc } => match kind {
                    PlcRecoveryKind::ResetPlc => self.state.plc_mut(plc).reset(),
                    PlcRecoveryKind::ReplacePlc => self.state.plc_mut(plc).replace(),
                },
            }
        }
        cost
    }

    fn roll_investigation(&mut self, kind: InvestigationKind, node: NodeId) -> bool {
        if !self.state.compromise(node).is_compromised() {
            return false;
        }
        let mut p = kind.detect_prob();
        if self.state.compromise(node).contains(C::MalwareCleaned) {
            p *= 1.0 - self.apt_params.cleanup_effectiveness;
        }
        // The advanced scan keeps scanning (one draw per hour) until it
        // detects something or its maximum duration elapses.
        let draws = if kind == InvestigationKind::AdvancedScan {
            kind.duration()
        } else {
            1
        };
        let miss_all = (1.0 - p).powi(draws as i32);
        self.rng.gen_bool((1.0 - miss_all).clamp(0.0, 1.0))
    }

    fn apply_mitigation(&mut self, kind: MitigationKind, node: NodeId) {
        if kind == MitigationKind::Quarantine {
            self.state.toggle_quarantine(node);
            return;
        }
        if let Some(counter) = kind.countermeasure() {
            if self.state.compromise(node).contains(counter) {
                return;
            }
        }
        self.state.update_compromise(node, |c| c.clear_all());
    }

    /// Runs one full episode with a fixed defender action callback, returning
    /// the accumulated evaluation metrics. Convenience for baselines, tests
    /// and benchmarks.
    pub fn run_episode<F>(&mut self, mut defender: F) -> crate::metrics::EpisodeMetrics
    where
        F: FnMut(&Observation, &Self) -> Vec<DefenderAction>,
    {
        let mut metrics = crate::metrics::EpisodeMetrics::new();
        let mut obs = self.reset();
        let gamma = self.gamma();
        let mut discount = 1.0;
        loop {
            let actions = defender(&obs, self);
            let step = self.step(&actions);
            metrics.record_step(
                step.reward,
                discount,
                step.it_cost,
                step.info.nodes_compromised,
                step.info.plcs_offline,
            );
            discount *= gamma;
            obs = step.observation;
            if step.done {
                break;
            }
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apt::{AptProfile, AttackObjective, AttackVector};

    fn no_defense_config() -> SimConfig {
        SimConfig::small()
            .with_seed(3)
            .with_max_time(4_000)
            .with_apt(
                AptProfile::apt1()
                    .with_objective(AttackObjective::Disrupt)
                    .with_vector(AttackVector::Opc),
            )
    }

    #[test]
    fn reset_establishes_a_single_beachhead() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(1));
        let obs = env.reset();
        assert_eq!(env.time(), 0);
        assert_eq!(env.state().compromised_count(), 1);
        assert_eq!(obs.plcs_offline(), 0);
        assert_eq!(obs.nodes.len(), env.topology().node_count());
    }

    #[test]
    fn undefended_network_is_eventually_attacked() {
        let mut env = IcsEnvironment::new(no_defense_config());
        env.reset();
        let mut offline_seen = 0;
        for _ in 0..4_000 {
            let step = env.step(&[DefenderAction::NoAction]);
            offline_seen = offline_seen.max(step.info.plcs_offline);
            if step.done {
                break;
            }
        }
        assert!(
            offline_seen >= 10,
            "expected the undefended APT to take PLCs offline, saw {offline_seen}"
        );
    }

    #[test]
    fn attack_progression_visits_expected_phases() {
        let mut env = IcsEnvironment::new(no_defense_config().with_seed(11));
        env.reset();
        let mut phases = std::collections::HashSet::new();
        for _ in 0..4_000 {
            let step = env.step(&[DefenderAction::NoAction]);
            phases.insert(step.info.apt_phase);
            if step.done {
                break;
            }
        }
        for expected in [
            "lateral movement",
            "network discovery",
            "process discovery",
            "PLC discovery",
            "execute attack",
        ] {
            assert!(
                phases.contains(expected),
                "missing phase {expected}: {phases:?}"
            );
        }
    }

    #[test]
    fn rewards_are_bounded_and_terminal_reward_fires() {
        let cfg = SimConfig::tiny().with_seed(5).with_max_time(50);
        let mut env = IcsEnvironment::new(cfg);
        env.reset();
        let mut last = None;
        for _ in 0..50 {
            let step = env.step(&[DefenderAction::NoAction]);
            assert!(step.reward <= 1.1 + 2_000.1);
            last = Some(step);
        }
        let last = last.unwrap();
        assert!(last.done);
        assert!(last.reward > 1_000.0, "terminal reward should dominate");
    }

    #[test]
    fn defender_costs_are_charged_on_completion() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(2).with_max_time(100));
        env.reset();
        let node = env.topology().workstations().next().unwrap().id;
        let action = DefenderAction::Investigate {
            kind: InvestigationKind::SimpleScan,
            node,
        };
        // Simple scan takes 2 hours: cost appears when it completes.
        let step1 = env.step(&[action]);
        let step2 = env.step(&[]);
        assert_eq!(step1.it_cost, 0.0);
        assert!((step2.it_cost - 0.01).abs() < 1e-12);
    }

    #[test]
    fn reimage_evicts_attacker_and_quarantine_isolates() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(9).with_max_time(500));
        env.reset();
        let beachhead = env.state().compromised_nodes()[0];
        // Re-image the beachhead; after the 8-hour duration the node is clean.
        let reimage = DefenderAction::Mitigate {
            kind: MitigationKind::ReimageNode,
            node: beachhead,
        };
        env.step(&[reimage]);
        for _ in 0..8 {
            env.step(&[]);
        }
        assert!(!env.state().compromise(beachhead).is_compromised());

        // Quarantining a node moves it to the quarantine VLAN next step.
        let other = env.topology().workstations().nth(1).unwrap().id;
        let quarantine = DefenderAction::Mitigate {
            kind: MitigationKind::Quarantine,
            node: other,
        };
        env.step(&[quarantine]);
        assert!(env.state().is_quarantined(other));
    }

    #[test]
    fn reboot_is_defeated_by_reboot_persistence() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(4));
        env.reset();
        let node = env.state().compromised_nodes()[0];
        env_force_persistence(&mut env, node);
        let reboot = DefenderAction::Mitigate {
            kind: MitigationKind::Reboot,
            node,
        };
        env.step(&[reboot]);
        assert!(env.state().compromise(node).is_compromised());
        // A re-image has no countermeasure and always works.
        let reimage = DefenderAction::Mitigate {
            kind: MitigationKind::ReimageNode,
            node,
        };
        env.step(&[reimage]);
        for _ in 0..8 {
            env.step(&[]);
        }
        assert!(!env.state().compromise(node).is_compromised());
    }

    fn env_force_persistence(env: &mut IcsEnvironment, node: NodeId) {
        env.state.update_compromise(node, |comp| {
            comp.try_insert(C::Scanned);
            comp.try_insert(C::InitialCompromise);
            comp.try_insert(C::RebootPersistence);
        });
    }

    #[test]
    fn plc_recovery_actions_restore_service() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(8));
        env.reset();
        let plc = env.topology().plc_ids().next().unwrap();
        env.state.plc_mut(plc).status = PlcStatus::Disrupted;
        env.step(&[DefenderAction::RecoverPlc {
            kind: PlcRecoveryKind::ResetPlc,
            plc,
        }]);
        assert_eq!(env.state().plc(plc).status, PlcStatus::Nominal);

        env.state.plc_mut(plc).status = PlcStatus::Destroyed;
        env.step(&[DefenderAction::RecoverPlc {
            kind: PlcRecoveryKind::ReplacePlc,
            plc,
        }]);
        // Replacement takes 24 hours.
        for _ in 0..24 {
            env.step(&[]);
        }
        assert_eq!(env.state().plc(plc).status, PlcStatus::Nominal);
    }

    /// Deterministic scripted defender that exercises every observation
    /// channel: investigations, re-images, and quarantine toggles.
    fn scripted_defender(obs: &Observation, env: &IcsEnvironment) -> Vec<DefenderAction> {
        let n = env.topology().node_count();
        let t = obs.time;
        let mut actions = Vec::new();
        if t.is_multiple_of(5) {
            actions.push(DefenderAction::Investigate {
                kind: InvestigationKind::SimpleScan,
                node: NodeId::from_index((t as usize * 3) % n),
            });
        }
        if t.is_multiple_of(7) {
            actions.push(DefenderAction::Mitigate {
                kind: MitigationKind::Quarantine,
                node: NodeId::from_index((t as usize * 5) % n),
            });
        }
        if t.is_multiple_of(11) {
            actions.push(DefenderAction::Mitigate {
                kind: MitigationKind::ReimageNode,
                node: NodeId::from_index((t as usize * 7) % n),
            });
        }
        actions
    }

    #[test]
    fn sparse_observation_path_matches_dense_reference() {
        let cfg = no_defense_config().with_seed(21).with_max_time(400);
        let run = |dense: bool| {
            let mut env = IcsEnvironment::new(cfg.clone());
            env.set_dense_observation_reference(dense);
            let mut obs = env.reset();
            let mut transcript = Vec::new();
            loop {
                let actions = scripted_defender(&obs, &env);
                let step = env.step(&actions);
                let done = step.done;
                obs = step.observation.clone();
                transcript.push((step.observation, step.reward.to_bits(), step.info));
                if done {
                    break;
                }
            }
            assert!(env.state().sparse_indices_match_dense_scan());
            transcript
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn episodes_are_reproducible_for_a_fixed_seed() {
        let run = |seed: u64| {
            let mut env =
                IcsEnvironment::new(no_defense_config().with_seed(seed).with_max_time(600));
            env.run_episode(|_, _| vec![DefenderAction::NoAction])
        };
        let a = run(17);
        let b = run(17);
        let c = run(18);
        assert_eq!(a, b);
        assert!(a != c || a.discounted_return != c.discounted_return);
    }

    #[test]
    fn run_episode_accumulates_metrics() {
        let mut env = IcsEnvironment::new(SimConfig::tiny().with_seed(6).with_max_time(100));
        let metrics = env.run_episode(|_, _| vec![DefenderAction::NoAction]);
        assert_eq!(metrics.steps, 100);
        assert!(metrics.discounted_return > 0.0);
        assert_eq!(metrics.average_it_cost(), 0.0);
    }

    #[test]
    fn shaping_reward_is_zero_when_disabled() {
        let cfg = SimConfig::tiny()
            .with_seed(12)
            .with_shaping(crate::reward::ShapingConfig::disabled());
        let mut env = IcsEnvironment::new(cfg);
        env.reset();
        for _ in 0..50 {
            let step = env.step(&[DefenderAction::NoAction]);
            assert_eq!(step.shaping_reward, 0.0);
        }
    }
}
