//! ACSO — reproduction of *Autonomous Attack Mitigation for Industrial
//! Control Systems* (DSN 2022).
//!
//! This facade crate re-exports the workspace's eight crates under one roof
//! so integration tests, examples and downstream users can depend on a
//! single package. The functional split mirrors the paper's Fig. 7:
//!
//! * [`net`] (`ics-net`) — static Purdue-model network topology;
//! * [`sim`] (`ics-sim`) — the INASIM attack/defence simulator (§3.1);
//! * [`dbn`] — the dynamic Bayesian network belief filter (§3.2);
//! * [`neural`] — from-scratch NN layers used by the Q-networks;
//! * [`rl`] — DQN machinery (replay, n-step returns, schedules);
//! * [`core`] (`acso-core`) — the agent, baselines, training and evaluation;
//! * [`bench`](mod@bench) (`acso-bench`) — paper-figure experiment plumbing;
//! * [`serve`] (`acso-serve`) — the persistent evaluation daemon (JSONL
//!   protocol, Prometheus metrics; see `docs/PROTOCOL.md`).
//!
//! # Example
//!
//! ```
//! // Run a short undefended episode on the tiny topology.
//! use acso::sim::{DefenderAction, IcsEnvironment, SimConfig};
//!
//! let mut env = IcsEnvironment::new(SimConfig::tiny().with_max_time(10).with_seed(1));
//! let metrics = env.run_episode(|_obs, _env| vec![DefenderAction::NoAction]);
//! assert!(metrics.steps > 0);
//! ```

#![warn(missing_docs)]

pub use acso_bench as bench;
pub use acso_core as core;
pub use acso_serve as serve;
pub use dbn;
pub use ics_net as net;
pub use ics_sim as sim;
pub use neural;
pub use rl;
